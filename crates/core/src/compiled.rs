//! Inference-compiled rule sets for online serving.
//!
//! Training wants a rule set that is easy to mutate; serving wants one that
//! is fast to *query*. [`CompiledRuleSet`] lowers a trained/merged
//! [`RuleSetPredictor`] into a static, query-optimized form:
//!
//! * **Per-dimension boundary projections.** For each window position the
//!   bounded genes' interval endpoints are collected, sorted and deduplicated.
//!   Between (and at) consecutive endpoints the set of rules whose interval
//!   contains the query value is *constant*, so each elementary segment
//!   stores a precomputed rule bitset (wildcard rules are members of every
//!   segment). A query value selects its segment by one binary search.
//! * **Bitset AND.** The firing set for a window is the intersection of the
//!   `D` per-dimension segment bitsets — `O(D·(log B + R/64))` words instead
//!   of the `O(R·D)` interval scan of [`RuleSetPredictor::predict`], with an
//!   early exit as soon as the running intersection dies.
//! * **Contiguous payloads.** The firing rules' regression rows `(a, b)` and
//!   expected errors `e_R` live in flat arrays indexed by rule id, so the
//!   combination loop streams them without pointer chasing.
//!
//! Predictions are **bit-identical** to [`RuleSetPredictor::predict_with`]
//! for every combination mode: the firing set is provably the same (the
//! segment decomposition reproduces `Gene::accepts` exactly, including
//! closed endpoints and `-0.0 == 0.0`), rules are visited in the same
//! ascending order, and each term is computed with the same floating-point
//! expression. A property test pins this.

use crate::bitset::MatchBitset;
use crate::dataset::ExampleSet;
use crate::predict::{Combination, PredictionDetail, RuleSetPredictor, WEIGHT_EPS};
use crate::rule::Gene;
use evoforecast_linalg::vector::dot_unchecked;

/// Windows per parallel chunk in [`CompiledRuleSet::predict_dataset`]; each
/// chunk reuses one scratch bitset across all of its windows.
const PREDICT_CHUNK: usize = 1024;

/// One window position's compiled stabbing index.
#[derive(Debug, Clone)]
struct AxisIndex {
    /// Sorted, deduplicated interval endpoints of the bounded genes at this
    /// position (`-0.0` normalized to `0.0`; always finite).
    boundaries: Vec<f64>,
    /// `2·boundaries.len() + 1` elementary segments: segment `2j` is the
    /// open interval *before* boundary `j` (or after the last), segment
    /// `2j+1` is the boundary point itself. Each holds the rules whose gene
    /// at this position accepts any value in the segment.
    segments: Vec<MatchBitset>,
    /// Rules with a wildcard at this position (the answer for NaN queries,
    /// which no bounded interval accepts).
    wildcards: MatchBitset,
}

impl AxisIndex {
    /// Collapse `-0.0` to `0.0` so binary search agrees with IEEE `==`
    /// (which `Gene::accepts`' range check uses).
    fn norm(v: f64) -> f64 {
        if v == 0.0 {
            0.0
        } else {
            v
        }
    }

    fn build(position: usize, rules: &[crate::rule::Rule]) -> AxisIndex {
        let r = rules.len();
        let mut wildcards = MatchBitset::new(r);
        let mut boundaries: Vec<f64> = Vec::new();
        for (i, rule) in rules.iter().enumerate() {
            match rule.condition.genes()[position] {
                Gene::Wildcard => wildcards.set(i),
                Gene::Bounded { lo, hi } => {
                    boundaries.push(Self::norm(lo));
                    boundaries.push(Self::norm(hi));
                }
            }
        }
        boundaries.sort_by(f64::total_cmp);
        boundaries.dedup();

        // Every segment starts as "the wildcard rules"; bounded rules then
        // paint the contiguous segment range their interval covers.
        let mut segments = vec![wildcards.clone(); 2 * boundaries.len() + 1];
        for (i, rule) in rules.iter().enumerate() {
            if let Gene::Bounded { lo, hi } = rule.condition.genes()[position] {
                let il = boundaries.partition_point(|b| *b < Self::norm(lo));
                let ih = boundaries.partition_point(|b| *b < Self::norm(hi));
                // [lo, hi] covers the boundary points il..=ih and every open
                // segment strictly between them: segments 2·il+1 ..= 2·ih+1.
                for segment in &mut segments[2 * il + 1..=2 * ih + 1] {
                    segment.set(i);
                }
            }
        }
        AxisIndex {
            boundaries,
            segments,
            wildcards,
        }
    }

    /// The precomputed firing bitset for query value `x` at this position.
    #[inline]
    fn segment_for(&self, x: f64) -> &MatchBitset {
        if x.is_nan() {
            // No closed interval contains NaN; only wildcards accept it.
            return &self.wildcards;
        }
        let i = self.boundaries.partition_point(|b| *b < x);
        if i < self.boundaries.len() && self.boundaries[i] == x {
            &self.segments[2 * i + 1]
        } else {
            &self.segments[2 * i]
        }
    }
}

/// A rule set lowered into an inference-optimized form: per-dimension
/// boundary projections for the firing set, flat payload arrays for the
/// combination loop. Build once with [`CompiledRuleSet::compile`], query from
/// any number of threads (`&self` only).
#[derive(Debug, Clone)]
pub struct CompiledRuleSet {
    dims: usize,
    rule_count: usize,
    /// Row-major `rule_count × dims` regression coefficients.
    coefficients: Vec<f64>,
    intercepts: Vec<f64>,
    errors: Vec<f64>,
    axes: Vec<AxisIndex>,
}

impl CompiledRuleSet {
    /// Lower a predictor into compiled form. `O(D · R log R)` build time.
    ///
    /// # Panics
    /// Panics when the predictor mixes rules of different window lengths
    /// (an upstream merge bug, not a data condition).
    pub fn compile(predictor: &RuleSetPredictor) -> CompiledRuleSet {
        let rules = predictor.rules();
        let rule_count = rules.len();
        let dims = rules.first().map_or(0, |r| r.window_len());
        assert!(
            rules.iter().all(|r| r.window_len() == dims),
            "cannot compile a rule set with mixed window lengths"
        );
        let mut coefficients = Vec::with_capacity(rule_count * dims);
        let mut intercepts = Vec::with_capacity(rule_count);
        let mut errors = Vec::with_capacity(rule_count);
        for r in rules {
            coefficients.extend_from_slice(&r.coefficients);
            intercepts.push(r.intercept);
            errors.push(r.error);
        }
        let axes = (0..dims).map(|p| AxisIndex::build(p, rules)).collect();
        CompiledRuleSet {
            dims,
            rule_count,
            coefficients,
            intercepts,
            errors,
            axes,
        }
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rule_count
    }

    /// True when no rules were compiled (every prediction abstains).
    pub fn is_empty(&self) -> bool {
        self.rule_count == 0
    }

    /// Window length `D` the compiled rules expect.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// A scratch firing-set bitset sized for this rule set. Allocate once,
    /// reuse across queries via the `*_into` entry points.
    pub fn scratch(&self) -> MatchBitset {
        MatchBitset::new(self.rule_count)
    }

    /// Fill `scratch` with the firing set for `window`; returns `false` when
    /// it is empty. `D` binary searches + up to `D` bitset ANDs with early
    /// exit.
    fn fill_firing(&self, window: &[f64], scratch: &mut MatchBitset) -> bool {
        debug_assert_eq!(window.len(), self.dims, "window/compiled length");
        let mut axes = self.axes.iter().zip(window.iter());
        let Some((axis, &x)) = axes.next() else {
            return false; // zero-dimensional: no rules at all
        };
        scratch.copy_from(axis.segment_for(x));
        let mut alive = scratch.count_ones() > 0;
        for (axis, &x) in axes {
            if !alive {
                return false;
            }
            alive = scratch.intersect_with(axis.segment_for(x));
        }
        alive
    }

    /// [`RuleSetPredictor::predict`], compiled. Allocates a fresh scratch —
    /// hot paths should hold one and call
    /// [`CompiledRuleSet::predict_with_into`].
    pub fn predict(&self, window: &[f64]) -> Option<f64> {
        self.predict_with(window, Combination::Mean)
    }

    /// [`RuleSetPredictor::predict_with`], compiled.
    pub fn predict_with(&self, window: &[f64], combination: Combination) -> Option<f64> {
        let mut scratch = self.scratch();
        self.predict_with_into(window, combination, &mut scratch)
    }

    /// Predict using a caller-owned scratch bitset (no allocation).
    ///
    /// # Panics
    /// Panics when `scratch` was not created by [`CompiledRuleSet::scratch`]
    /// of a rule set with the same rule count; in debug builds also when the
    /// window length differs from `D`.
    pub fn predict_with_into(
        &self,
        window: &[f64],
        combination: Combination,
        scratch: &mut MatchBitset,
    ) -> Option<f64> {
        if !self.fill_firing(window, scratch) {
            return None;
        }
        // Mirror RuleSetPredictor::predict_with term by term, in the same
        // ascending rule order, so the f64 result is bit-identical.
        let mut sum = 0.0;
        let mut weight_sum = 0.0;
        let mut count = 0usize;
        for r in scratch.iter_ones() {
            let w = match combination {
                Combination::Mean => 1.0,
                Combination::InverseErrorWeighted => 1.0 / (self.errors[r] + WEIGHT_EPS),
            };
            sum += w * self.evaluate_rule(r, window);
            weight_sum += w;
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some(sum / weight_sum)
        }
    }

    /// [`RuleSetPredictor::predict_detailed`], compiled, with caller-owned
    /// scratch.
    pub fn predict_detailed_into(
        &self,
        window: &[f64],
        scratch: &mut MatchBitset,
    ) -> Option<PredictionDetail> {
        if !self.fill_firing(window, scratch) {
            return None;
        }
        let mut sum = 0.0;
        let mut err_sum = 0.0;
        let mut count = 0usize;
        for r in scratch.iter_ones() {
            sum += self.evaluate_rule(r, window);
            err_sum += self.errors[r];
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some(PredictionDetail {
                value: sum / count as f64,
                firing_rules: count,
                expected_error: err_sum / count as f64,
            })
        }
    }

    /// The hyperplane of rule `r` at `window` — the same expression as
    /// [`crate::rule::Rule::predict`] over the flat payload row.
    #[inline]
    fn evaluate_rule(&self, r: usize, window: &[f64]) -> f64 {
        let row = &self.coefficients[r * self.dims..(r + 1) * self.dims];
        dot_unchecked(row, window) + self.intercepts[r]
    }

    /// Predict every example of a dataset. The sequential path (fewer than
    /// `threshold` examples) reuses **one** scratch bitset across all
    /// windows; the parallel path reuses one per [`PREDICT_CHUNK`]-window
    /// chunk — never one per window.
    pub fn predict_dataset<E: ExampleSet>(
        &self,
        data: &E,
        combination: Combination,
        threshold: usize,
    ) -> Vec<Option<f64>> {
        use rayon::prelude::*;
        let n = data.len();
        if self.rule_count == 0 {
            return vec![None; n];
        }
        if n < threshold {
            let mut scratch = self.scratch();
            return (0..n)
                .map(|i| self.predict_with_into(data.features(i), combination, &mut scratch))
                .collect();
        }
        let chunks = n.div_ceil(PREDICT_CHUNK);
        let parts: Vec<Vec<Option<f64>>> = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let start = c * PREDICT_CHUNK;
                let end = (start + PREDICT_CHUNK).min(n);
                let mut scratch = self.scratch();
                (start..end)
                    .map(|i| self.predict_with_into(data.features(i), combination, &mut scratch))
                    .collect()
            })
            .collect();
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Condition, Rule};
    use evoforecast_tsdata::window::WindowSpec;
    use proptest::prelude::*;

    fn rule(genes: Vec<Gene>, coefficients: Vec<f64>, intercept: f64, error: f64) -> Rule {
        Rule {
            condition: Condition::new(genes),
            coefficients,
            intercept,
            prediction: intercept,
            error,
            matched: 5,
        }
    }

    fn band(lo: f64, hi: f64, value: f64, error: f64) -> Rule {
        rule(vec![Gene::bounded(lo, hi)], vec![0.0], value, error)
    }

    #[test]
    fn empty_rule_set_always_abstains() {
        let compiled = CompiledRuleSet::compile(&RuleSetPredictor::new(vec![]));
        assert!(compiled.is_empty());
        assert_eq!(compiled.len(), 0);
        assert_eq!(compiled.dims(), 0);
        assert_eq!(compiled.predict(&[]), None);
    }

    #[test]
    fn matches_scan_on_hand_cases() {
        let p = RuleSetPredictor::new(vec![
            band(0.0, 10.0, 4.0, 0.1),
            band(0.0, 5.0, 8.0, 0.3),
            band(20.0, 30.0, 1.0, 0.2),
        ]);
        let compiled = CompiledRuleSet::compile(&p);
        assert_eq!(compiled.len(), 3);
        assert_eq!(compiled.dims(), 1);
        for x in [
            -1.0,
            0.0,
            3.0,
            5.0,
            5.0001,
            7.0,
            10.0,
            10.5,
            20.0,
            25.0,
            30.0,
            31.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            assert_eq!(compiled.predict(&[x]), p.predict(&[x]), "at x = {x}");
        }
    }

    #[test]
    fn closed_endpoints_are_inclusive() {
        let p = RuleSetPredictor::new(vec![band(1.0, 3.0, 7.0, 0.1)]);
        let compiled = CompiledRuleSet::compile(&p);
        assert_eq!(compiled.predict(&[1.0]), Some(7.0));
        assert_eq!(compiled.predict(&[3.0]), Some(7.0));
        assert_eq!(compiled.predict(&[0.999]), None);
        assert_eq!(compiled.predict(&[3.001]), None);
    }

    #[test]
    fn negative_zero_boundary_agrees_with_ieee_equality() {
        let p = RuleSetPredictor::new(vec![band(-0.0, 2.0, 7.0, 0.1)]);
        let compiled = CompiledRuleSet::compile(&p);
        // 0.0 == -0.0 in IEEE terms, so both sides must fire the rule.
        assert_eq!(compiled.predict(&[0.0]), p.predict(&[0.0]));
        assert_eq!(compiled.predict(&[-0.0]), p.predict(&[-0.0]));
        assert_eq!(compiled.predict(&[0.0]), Some(7.0));
    }

    #[test]
    fn nan_window_only_fires_wildcards() {
        let p = RuleSetPredictor::new(vec![
            band(0.0, 10.0, 4.0, 0.1),
            rule(vec![Gene::Wildcard], vec![0.0], 9.0, 0.2),
        ]);
        let compiled = CompiledRuleSet::compile(&p);
        // The wildcard rule fires; its hyperplane is 0·NaN + 9 = NaN, so
        // compare bit patterns (NaN != NaN under PartialEq).
        assert_eq!(
            compiled.predict(&[f64::NAN]).map(f64::to_bits),
            p.predict(&[f64::NAN]).map(f64::to_bits)
        );
        assert!(compiled.predict(&[f64::NAN]).unwrap().is_nan());
        // A bounded-only rule set abstains on NaN outright.
        let bounded = RuleSetPredictor::new(vec![band(0.0, 10.0, 4.0, 0.1)]);
        let compiled = CompiledRuleSet::compile(&bounded);
        assert_eq!(compiled.predict(&[f64::NAN]), None);
        assert_eq!(bounded.predict(&[f64::NAN]), None);
    }

    #[test]
    fn wildcard_axes_and_hyperplanes() {
        let p = RuleSetPredictor::new(vec![
            rule(
                vec![Gene::bounded(0.0, 10.0), Gene::Wildcard],
                vec![2.0, 1.0],
                1.0,
                0.1,
            ),
            rule(
                vec![Gene::Wildcard, Gene::bounded(-5.0, 5.0)],
                vec![0.5, 0.5],
                0.0,
                0.4,
            ),
        ]);
        let compiled = CompiledRuleSet::compile(&p);
        for w in [
            [4.0, 100.0], // only rule 0
            [4.0, 0.0],   // both
            [40.0, 0.0],  // only rule 1
            [40.0, 50.0], // neither
        ] {
            assert_eq!(compiled.predict(&w), p.predict(&w), "window {w:?}");
            assert_eq!(
                compiled.predict_with(&w, Combination::InverseErrorWeighted),
                p.predict_with(&w, Combination::InverseErrorWeighted),
            );
        }
    }

    #[test]
    fn detailed_matches_scan() {
        let p = RuleSetPredictor::new(vec![band(0.0, 10.0, 4.0, 0.1), band(0.0, 5.0, 8.0, 0.3)]);
        let compiled = CompiledRuleSet::compile(&p);
        let mut scratch = compiled.scratch();
        for x in [3.0, 7.0, 99.0] {
            let a = compiled.predict_detailed_into(&[x], &mut scratch);
            let b = p.predict_detailed(&[x]);
            assert_eq!(a, b, "at x = {x}");
        }
    }

    #[test]
    fn scratch_reuse_leaves_no_stale_state() {
        let p = RuleSetPredictor::new(vec![band(0.0, 10.0, 4.0, 0.1), band(5.0, 20.0, 6.0, 0.1)]);
        let compiled = CompiledRuleSet::compile(&p);
        let mut scratch = compiled.scratch();
        // Fire both, then a window firing none, then one again.
        assert_eq!(
            compiled.predict_with_into(&[7.0], Combination::Mean, &mut scratch),
            Some(5.0)
        );
        assert_eq!(
            compiled.predict_with_into(&[99.0], Combination::Mean, &mut scratch),
            None
        );
        assert_eq!(
            compiled.predict_with_into(&[2.0], Combination::Mean, &mut scratch),
            Some(4.0)
        );
    }

    #[test]
    fn predict_dataset_reuses_scratch_and_matches_per_window() {
        let vals: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin() * 50.0).collect();
        let ds = WindowSpec::new(3, 1).unwrap().dataset(&vals).unwrap();
        let p = RuleSetPredictor::new(vec![
            rule(
                vec![Gene::bounded(-40.0, 40.0), Gene::Wildcard, Gene::Wildcard],
                vec![1.0, 0.5, -0.5],
                0.3,
                0.2,
            ),
            rule(
                vec![Gene::Wildcard, Gene::bounded(0.0, 50.0), Gene::Wildcard],
                vec![0.0, 1.0, 0.0],
                -1.0,
                0.1,
            ),
        ]);
        let compiled = CompiledRuleSet::compile(&p);
        let reference: Vec<Option<f64>> = (0..ds.len()).map(|i| p.predict(ds.window(i))).collect();
        // Sequential (one scratch for everything) and parallel (one per
        // chunk) both equal the per-window reference, bit for bit.
        assert_eq!(
            compiled.predict_dataset(&ds, Combination::Mean, usize::MAX),
            reference
        );
        assert_eq!(
            compiled.predict_dataset(&ds, Combination::Mean, 1),
            reference
        );
        // And RuleSetPredictor::predict_dataset (now routed through the
        // compiled path) is pinned to the same outputs.
        assert_eq!(p.predict_dataset(&ds, usize::MAX), reference);
        assert_eq!(p.predict_dataset(&ds, 1), reference);
    }

    #[test]
    #[should_panic(expected = "mixed window lengths")]
    fn mixed_dims_panic() {
        let p = RuleSetPredictor::new(vec![
            band(0.0, 1.0, 1.0, 0.1),
            rule(
                vec![Gene::bounded(0.0, 1.0), Gene::Wildcard],
                vec![0.0, 0.0],
                1.0,
                0.1,
            ),
        ]);
        CompiledRuleSet::compile(&p);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn compiled_is_bit_identical_to_scan(
            gene_specs in proptest::collection::vec(
                proptest::collection::vec(
                    // None = wildcard, Some((lo, width)) = bounded interval.
                    proptest::option::of((-50.0..50.0f64, 0.0..40.0f64)),
                    3..=3,
                ),
                1..12,
            ),
            payload in proptest::collection::vec(
                (-2.0..2.0f64, -2.0..2.0f64, -2.0..2.0f64, -5.0..5.0f64, 0.0..3.0f64),
                12,
            ),
            windows in proptest::collection::vec(
                proptest::collection::vec(-70.0..70.0f64, 3..=3),
                1..20,
            ),
        ) {
            let rules: Vec<Rule> = gene_specs
                .iter()
                .zip(payload.iter())
                .map(|(spec, &(a, b, c, intercept, error))| {
                    let genes: Vec<Gene> = spec
                        .iter()
                        .map(|g| match g {
                            Some((lo, width)) => Gene::bounded(*lo, lo + width),
                            None => Gene::Wildcard,
                        })
                        .collect();
                    rule(genes, vec![a, b, c], intercept, error)
                })
                .collect();
            let p = RuleSetPredictor::new(rules);
            let compiled = CompiledRuleSet::compile(&p);
            let mut scratch = compiled.scratch();
            for w in &windows {
                for combination in [Combination::Mean, Combination::InverseErrorWeighted] {
                    let scan = p.predict_with(w, combination);
                    let fast = compiled.predict_with_into(w, combination, &mut scratch);
                    // Bit-identical, not approximately equal.
                    prop_assert_eq!(scan.map(f64::to_bits), fast.map(f64::to_bits));
                }
            }
        }
    }
}
