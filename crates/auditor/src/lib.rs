//! `evoforecast-auditor` — a workspace invariant auditor for the
//! evoforecast crates.
//!
//! The compiler proves memory safety; this tool checks the invariants the
//! *design* depends on and the compiler cannot see:
//!
//! * **determinism** — the evolution hot path is a pure function of
//!   `(config, data, seed)`: no wall clock, no unordered containers, no
//!   ambient randomness in `crates/core/src`.
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!` outside tests in the
//!   serve request path and the core library; slice indexing in serve needs
//!   a written bound proof.
//! * **lock-discipline** — registry guards are never held across channel
//!   sends or socket I/O in `crates/serve/src`.
//! * **error-taxonomy** — every serve `ErrorKind` maps to exactly one HTTP
//!   status and is exercised by at least one integration test.
//! * **cfg-hygiene** — fault-injection symbols stay behind the
//!   `fault-injection` feature gate.
//! * **allow-syntax** — every inline `// audit: allow(...)` names known
//!   rules and carries a justification.
//!
//! Known-good exceptions are allowlisted inline at the offending line:
//!
//! ```text
//! // audit: allow(panic-freedom) — index clamped to BUCKETS-1 above
//! ```
//!
//! Analysis is lexical (a hand-rolled token scanner, [`lexer`]) rather than
//! a full parse: the auditor must build with zero new dependencies in an
//! offline environment, and the invariants above are all visible at token
//! level. The cost is a small set of documented blind spots (see each rule
//! module); the benefit is a sub-second full-workspace gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use diag::{Diagnostic, Report};
use rules::{RuleId, Workspace, ALL_RULES};
use source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Load every auditable source file under `root`: `crates/*/src/**/*.rs`
/// and `crates/*/tests/**/*.rs`, with paths reported relative to `root`.
///
/// The auditor excludes itself: its fixtures and rule tests are wall-to-wall
/// deliberate violations.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        if crate_dir.file_name().is_some_and(|n| n == "auditor") {
            continue;
        }
        for sub in ["src", "tests"] {
            let dir = crate_dir.join(sub);
            if dir.is_dir() {
                collect_rs_files(root, &dir, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(Workspace { files })
}

/// Recursively gather `.rs` files under `dir` into `files`.
fn collect_rs_files(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(root, &path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let source = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(SourceFile::parse(rel, &source));
        }
    }
    Ok(())
}

/// Run `selected` rules over a prepared workspace. Raw rule hits whose line
/// carries a matching inline allow directive are filtered out here —
/// centrally, so every rule gets identical allowlist behavior. Diagnostics
/// come back sorted by file, line, then rule.
pub fn run_rules(ws: &Workspace, selected: &[RuleId]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &rule in selected {
        let raw = match rule {
            RuleId::Determinism => rules::determinism::check(ws),
            RuleId::PanicFreedom => rules::panics::check(ws),
            RuleId::LockDiscipline => rules::locks::check(ws),
            RuleId::ErrorTaxonomy => rules::taxonomy::check(ws),
            RuleId::CfgHygiene => rules::cfg_hygiene::check(ws),
            RuleId::AllowSyntax => rules::check_allow_syntax(ws),
        };
        out.extend(raw.into_iter().filter(|d| !is_suppressed(ws, d)));
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

/// Is this diagnostic's line allowlisted for its rule in its file?
/// `allow-syntax` findings are never suppressible — they police the
/// allowlist itself.
fn is_suppressed(ws: &Workspace, d: &Diagnostic) -> bool {
    if d.rule == RuleId::AllowSyntax.id() {
        return false;
    }
    ws.files
        .iter()
        .find(|f| f.path.display().to_string().replace('\\', "/") == d.file)
        .is_some_and(|f| f.is_allowed(&d.rule, d.line))
}

/// Load the workspace at `root` and run `selected` rules end to end.
pub fn run_audit(root: &Path, selected: &[RuleId]) -> io::Result<Report> {
    let ws = load_workspace(root)?;
    let diagnostics = run_rules(&ws, selected);
    Ok(Report {
        rules: selected.iter().map(|r| r.id().to_string()).collect(),
        files_scanned: ws.files.len(),
        clean: diagnostics.is_empty(),
        diagnostics,
    })
}

/// Run every rule — the CI gate entry point.
pub fn run_full_audit(root: &Path) -> io::Result<Report> {
    run_audit(root, &ALL_RULES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(p, s)| SourceFile::parse(PathBuf::from(p), s))
                .collect(),
        }
    }

    #[test]
    fn allowlisted_hit_is_suppressed_centrally() {
        let ws = ws_of(&[(
            "crates/core/src/engine.rs",
            "// audit: allow(determinism) — budget clock only bounds runtime\nlet t = Instant::now();\n",
        )]);
        assert!(run_rules(&ws, &[RuleId::Determinism]).is_empty());
    }

    #[test]
    fn unallowed_hit_survives() {
        let ws = ws_of(&[(
            "crates/core/src/engine.rs",
            "fn f() { let t = Instant::now(); }",
        )]);
        let d = run_rules(&ws, &[RuleId::Determinism]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "determinism");
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let ws = ws_of(&[(
            "crates/core/src/engine.rs",
            "// audit: allow(panic-freedom) — wrong rule named\nlet t = Instant::now();\n",
        )]);
        let d = run_rules(&ws, &[RuleId::Determinism]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn allow_syntax_findings_cannot_be_allowlisted() {
        let ws = ws_of(&[(
            "crates/core/src/engine.rs",
            "// audit: allow(allow-syntax) — trying to silence the police\n// audit: allow(not-a-rule) — bogus\nfn f() {}\n",
        )]);
        let d = run_rules(&ws, &[RuleId::AllowSyntax]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("not-a-rule"));
    }

    #[test]
    fn diagnostics_sort_by_file_then_line() {
        let ws = ws_of(&[
            (
                "crates/core/src/b.rs",
                "fn f() { x.unwrap(); }\nfn g() { let t = Instant::now(); }\n",
            ),
            ("crates/core/src/a.rs", "fn h() { y.unwrap(); }"),
        ]);
        let d = run_rules(&ws, &[RuleId::Determinism, RuleId::PanicFreedom]);
        let keys: Vec<(String, u32)> = d.iter().map(|d| (d.file.clone(), d.line)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(d.len(), 3);
        assert!(d[0].file.ends_with("a.rs"));
    }
}
