//! **determinism** — the evolution hot path must be a pure function of
//! `(config, data, seed)`.
//!
//! Inside `crates/core/src` this bans:
//! * `Instant::now()` / `SystemTime::now()` — ambient wall-clock reads make
//!   stopping (and therefore results) machine-dependent; time budgets are
//!   legitimate only as explicitly allowlisted stop conditions.
//! * `HashMap` / `HashSet` — iteration order is randomized per process, so
//!   any fold over one (rule merging, coverage accumulation) silently breaks
//!   the bit-identical pins from PRs 1–3. Use `BTreeMap`/`BTreeSet` or
//!   sorted vectors.
//! * `thread_rng` / `from_entropy` / `rand::random` — ambient randomness
//!   bypasses the seeded RNG discipline.
//!
//! Inside `crates/serve/src` only the container ban applies: wire responses
//! (`/models`, stats snapshots) must enumerate in a deterministic order.

use super::{RuleId, Workspace};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Run the rule over every in-scope file.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        let core_scope = p.contains("crates/core/src/");
        let serve_scope = p.contains("crates/serve/src/");
        if !core_scope && !serve_scope {
            continue;
        }
        check_file(file, core_scope, &mut out);
    }
    out
}

fn check_file(file: &SourceFile, core_scope: bool, out: &mut Vec<Diagnostic>) {
    let rule = RuleId::Determinism.id();
    let code = file.code_indexes();
    for (ci, &i) in code.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        let t = &file.tokens[i];

        // Unordered containers: banned in both scopes.
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(Diagnostic::new(
                rule,
                &file.path,
                t.line,
                format!(
                    "{} has nondeterministic iteration order; use BTreeMap/BTreeSet or a sorted Vec",
                    t.text
                ),
            ));
            continue;
        }

        if !core_scope {
            continue;
        }

        // Ambient time: `Instant::now` / `SystemTime::now`.
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && matches!(code.get(ci + 1), Some(&a) if file.tokens[a].is_punct(':'))
            && matches!(code.get(ci + 2), Some(&b) if file.tokens[b].is_punct(':'))
            && matches!(code.get(ci + 3), Some(&c) if file.tokens[c].is_ident("now"))
        {
            out.push(Diagnostic::new(
                rule,
                &file.path,
                t.line,
                format!(
                    "{}::now() reads ambient wall-clock time in the evolution hot path; \
                     results must be a pure function of (config, data, seed)",
                    t.text
                ),
            ));
            continue;
        }

        // Ambient randomness.
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            out.push(Diagnostic::new(
                rule,
                &file.path,
                t.line,
                format!(
                    "{}() draws ambient entropy; evolution must use the seeded RNG it was configured with",
                    t.text
                ),
            ));
            continue;
        }
        if t.is_ident("rand")
            && matches!(code.get(ci + 1), Some(&a) if file.tokens[a].is_punct(':'))
            && matches!(code.get(ci + 2), Some(&b) if file.tokens[b].is_punct(':'))
            && matches!(code.get(ci + 3), Some(&c) if file.tokens[c].is_ident("random"))
        {
            out.push(Diagnostic::new(
                rule,
                &file.path,
                t.line,
                "rand::random() draws ambient entropy; evolution must use the seeded RNG",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn ws(path: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::parse(PathBuf::from(path), src)],
        }
    }

    #[test]
    fn trips_on_instant_now_in_core() {
        let w = ws(
            "crates/core/src/engine.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        let diags = check(&w);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "determinism");
        assert_eq!(diags[0].line, 1);
        assert!(diags[0].message.contains("Instant::now"));
    }

    #[test]
    fn trips_on_hashmap_in_core_and_serve() {
        for path in ["crates/core/src/engine.rs", "crates/serve/src/registry.rs"] {
            let w = ws(path, "use std::collections::HashMap;\n");
            assert_eq!(check(&w).len(), 1, "{path}");
        }
    }

    #[test]
    fn serve_scope_permits_instant_now() {
        let w = ws(
            "crates/serve/src/server.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(check(&w).is_empty(), "deadline clocks are legal in serve");
    }

    #[test]
    fn clean_core_code_passes() {
        let w = ws(
            "crates/core/src/engine.rs",
            "use std::collections::BTreeMap;\nfn f(rng: &mut ChaCha8Rng) { rng.next_u64(); }\n",
        );
        assert!(check(&w).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let w = ws(
            "crates/core/src/parallel.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let s: std::collections::HashSet<usize> = Default::default(); }\n}\n",
        );
        assert!(check(&w).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let w = ws(
            "crates/cli/src/commands.rs",
            "fn f() { let t = Instant::now(); use std::collections::HashMap; }",
        );
        assert!(check(&w).is_empty());
    }

    #[test]
    fn thread_rng_trips() {
        let w = ws(
            "crates/core/src/init.rs",
            "fn f() { let r = thread_rng(); }",
        );
        assert_eq!(check(&w).len(), 1);
    }
}
