//! **error-taxonomy** — the serve wire protocol's `ErrorKind` enum is the
//! contract clients dispatch on, so it must stay total:
//!
//! 1. every variant maps to **exactly one** HTTP status arm in
//!    `ErrorKind::status` (zero = unreachable on the wire, two = ambiguous);
//! 2. every variant appears in at least one integration test
//!    (`crates/serve/tests` or `crates/cli/tests`), either as
//!    `ErrorKind::Variant` or as its kebab-case wire string — an error kind
//!    nobody can produce in a test is an error kind nobody has ever seen.

use super::{in_tests_dir, RuleId, Workspace};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Run the rule. A workspace without `crates/serve/src/protocol.rs` (e.g. a
/// fixture set for other rules) produces no findings.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(protocol) = ws.file_ending_with("crates/serve/src/protocol.rs") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let rule = RuleId::ErrorTaxonomy.id();

    let variants = enum_variants(protocol, "ErrorKind");
    if variants.is_empty() {
        out.push(Diagnostic::new(
            rule,
            &protocol.path,
            1,
            "could not locate `enum ErrorKind` in the protocol module",
        ));
        return out;
    }

    let status_body = fn_body_tokens(protocol, "status");
    for (name, line) in &variants {
        let mentions = count_variant_mentions(protocol, &status_body, name);
        if mentions == 0 {
            out.push(Diagnostic::new(
                rule,
                &protocol.path,
                *line,
                format!("ErrorKind::{name} has no arm in ErrorKind::status(); every kind needs exactly one HTTP status"),
            ));
        } else if mentions > 1 {
            out.push(Diagnostic::new(
                rule,
                &protocol.path,
                *line,
                format!("ErrorKind::{name} appears in {mentions} status arms; the kind→status map must be one-to-one"),
            ));
        }

        let kebab = kebab_case(name);
        let tested = ws.files.iter().any(|f| {
            in_tests_dir(&f.path) && (references_variant(f, name) || contains_str(f, &kebab))
        });
        if !tested {
            out.push(Diagnostic::new(
                rule,
                &protocol.path,
                *line,
                format!(
                    "ErrorKind::{name} ({kebab:?}) is asserted by no integration test under crates/*/tests"
                ),
            ));
        }
    }
    out
}

/// `(variant, line)` pairs of a payload-free enum's variants.
fn enum_variants(file: &SourceFile, enum_name: &str) -> Vec<(String, u32)> {
    let code = file.code_indexes();
    let mut out = Vec::new();
    let mut c = 0usize;
    while c + 2 < code.len() {
        if file.tokens[code[c]].is_ident("enum")
            && file.tokens[code[c + 1]].is_ident(enum_name)
            && file.tokens[code[c + 2]].is_punct('{')
        {
            let mut depth = 1usize;
            let mut j = c + 3;
            let mut at_variant_position = true;
            while j < code.len() && depth > 0 {
                let t = &file.tokens[code[j]];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 1 {
                    if t.is_punct(',') {
                        at_variant_position = true;
                    } else if t.is_punct('#') {
                        // Attribute on the next variant; skip its `[...]`.
                    } else if at_variant_position && t.kind == crate::lexer::TokenKind::Ident {
                        out.push((t.text.clone(), t.line));
                        at_variant_position = false;
                    }
                }
                j += 1;
            }
            return out;
        }
        c += 1;
    }
    out
}

/// Token indexes of the body of `fn <name>` (first match in the file).
fn fn_body_tokens(file: &SourceFile, fn_name: &str) -> Vec<usize> {
    let code = file.code_indexes();
    let mut c = 0usize;
    while c + 1 < code.len() {
        if file.tokens[code[c]].is_ident("fn") && file.tokens[code[c + 1]].is_ident(fn_name) {
            // Find the opening brace of the body.
            let mut j = c + 2;
            while j < code.len() && !file.tokens[code[j]].is_punct('{') {
                j += 1;
            }
            let mut depth = 0usize;
            let start = j;
            while j < code.len() {
                let t = &file.tokens[code[j]];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return code[start..=j].to_vec();
                    }
                }
                j += 1;
            }
            return code[start..].to_vec();
        }
        c += 1;
    }
    Vec::new()
}

/// Occurrences of `ErrorKind::<variant>` (or `Self::<variant>`) within the
/// given token indexes; `::` is two `:` punct tokens.
fn count_variant_mentions(file: &SourceFile, body: &[usize], variant: &str) -> usize {
    body.windows(4)
        .filter(|w| {
            (file.tokens[w[0]].is_ident("ErrorKind") || file.tokens[w[0]].is_ident("Self"))
                && file.tokens[w[1]].is_punct(':')
                && file.tokens[w[2]].is_punct(':')
                && file.tokens[w[3]].is_ident(variant)
        })
        .count()
}

/// Does the file reference `ErrorKind::<variant>` anywhere (tests included)?
fn references_variant(file: &SourceFile, variant: &str) -> bool {
    let code = file.code_indexes();
    code.windows(4).any(|w| {
        file.tokens[w[0]].is_ident("ErrorKind")
            && file.tokens[w[1]].is_punct(':')
            && file.tokens[w[2]].is_punct(':')
            && file.tokens[w[3]].is_ident(variant)
    })
}

/// Does any string literal in the file contain `needle`?
fn contains_str(file: &SourceFile, needle: &str) -> bool {
    file.tokens
        .iter()
        .any(|t| t.kind == crate::lexer::TokenKind::Str && t.text.contains(needle))
}

/// `WindowLengthMismatch` → `window-length-mismatch` (serde kebab-case).
fn kebab_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    const PROTOCOL_OK: &str = "pub enum ErrorKind {\n    BadRequest,\n    Overloaded,\n}\nimpl ErrorKind {\n    pub fn status(self) -> u16 {\n        match self {\n            ErrorKind::BadRequest => 400,\n            ErrorKind::Overloaded => 429,\n        }\n    }\n}\n";

    fn ws(protocol: &str, test_src: &str) -> Workspace {
        Workspace {
            files: vec![
                SourceFile::parse(PathBuf::from("crates/serve/src/protocol.rs"), protocol),
                SourceFile::parse(PathBuf::from("crates/serve/tests/protocol.rs"), test_src),
            ],
        }
    }

    #[test]
    fn complete_taxonomy_passes() {
        let w = ws(
            PROTOCOL_OK,
            "fn t() { assert_eq!(r.kind, ErrorKind::BadRequest); check(\"overloaded\"); }",
        );
        assert!(check(&w).is_empty());
    }

    #[test]
    fn kebab_string_counts_as_test_coverage() {
        let w = ws(
            PROTOCOL_OK,
            "fn t() { assert!(body.contains(\"bad-request\")); assert!(b2.contains(\"overloaded\")); }",
        );
        assert!(check(&w).is_empty());
    }

    #[test]
    fn missing_status_arm_trips() {
        let proto = "pub enum ErrorKind {\n    BadRequest,\n    Overloaded,\n}\nimpl ErrorKind {\n    pub fn status(self) -> u16 {\n        match self {\n            ErrorKind::BadRequest => 400,\n            _ => 500,\n        }\n    }\n}\n";
        let w = ws(
            proto,
            "fn t() { ErrorKind::BadRequest; ErrorKind::Overloaded; }",
        );
        let d = check(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no arm"), "{}", d[0].message);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn duplicate_status_arm_trips() {
        let proto = "pub enum ErrorKind {\n    BadRequest,\n}\nimpl ErrorKind {\n    pub fn status(self) -> u16 {\n        match self {\n            ErrorKind::BadRequest => 400,\n        }\n    }\n    pub fn other(self) {}\n}\nfn unrelated() { let x = ErrorKind::BadRequest; }\n";
        // A second mention inside status() itself:
        let proto_dup = proto.replace(
            "ErrorKind::BadRequest => 400,",
            "ErrorKind::BadRequest => 400,\n            ErrorKind::BadRequest => 401,",
        );
        let w = ws(&proto_dup, "fn t() { ErrorKind::BadRequest; }");
        let d = check(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("2 status arms"), "{}", d[0].message);
    }

    #[test]
    fn untested_variant_trips() {
        let w = ws(PROTOCOL_OK, "fn t() { ErrorKind::BadRequest; }");
        let d = check(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Overloaded"), "{}", d[0].message);
        assert!(d[0].message.contains("no integration test"));
    }

    #[test]
    fn doc_comments_on_variants_are_skipped() {
        let proto = "pub enum ErrorKind {\n    /// Body was bad.\n    BadRequest,\n}\nimpl ErrorKind {\n    pub fn status(self) -> u16 {\n        match self { ErrorKind::BadRequest => 400 }\n    }\n}\n";
        let w = ws(proto, "fn t() { ErrorKind::BadRequest; }");
        assert!(check(&w).is_empty());
    }

    #[test]
    fn kebab_conversion() {
        assert_eq!(kebab_case("WindowLengthMismatch"), "window-length-mismatch");
        assert_eq!(kebab_case("Overloaded"), "overloaded");
    }

    #[test]
    fn absent_protocol_is_no_finding() {
        let w = Workspace {
            files: vec![SourceFile::parse(
                PathBuf::from("crates/core/src/engine.rs"),
                "fn f() {}",
            )],
        };
        assert!(check(&w).is_empty());
    }
}
