//! **cfg-hygiene** — fault-injection machinery must be unreachable unless
//! the `fault-injection` feature is on.
//!
//! The supervisor's fault plan exists to kill worker threads on purpose; a
//! production binary that can reach it by accident is a production binary
//! with a self-destruct button. The rule works in two passes:
//!
//! 1. collect every symbol *defined* under
//!    `#[cfg(feature = "fault-injection")]` in `crates/core/src`;
//! 2. flag any use of those symbols from non-test library code that is not
//!    itself behind the gate.

use super::{RuleId, Workspace};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use std::collections::BTreeSet;

/// Item-introducing keywords whose following identifier is a definition.
const ITEM_KEYWORDS: [&str; 7] = ["fn", "struct", "enum", "trait", "type", "mod", "const"];

/// Run the rule over every in-scope file.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let gated = collect_gated_symbols(ws);
    if gated.is_empty() {
        return Vec::new();
    }

    let rule = RuleId::CfgHygiene.id();
    let mut out = Vec::new();
    for file in &ws.files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        if !p.contains("crates/") || !p.contains("/src/") {
            continue;
        }
        let code = file.code_indexes();
        for (ci, &i) in code.iter().enumerate() {
            if file.in_test(i) || file.in_fault_gate(i) {
                continue;
            }
            let t = &file.tokens[i];
            if t.kind != TokenKind::Ident || !gated.contains(t.text.as_str()) {
                continue;
            }
            // The definition keyword itself precedes definitions; a gated
            // definition is already masked, so any hit here is a *use* —
            // unless it's a same-named definition outside the gate, which is
            // exactly the leak this rule exists to catch too.
            let _ = ci;
            out.push(Diagnostic::new(
                rule,
                &file.path,
                t.line,
                format!(
                    "`{}` is defined under #[cfg(feature = \"fault-injection\")] but used \
                     outside the gate; gate this use or it breaks non-feature builds",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Pass 1: names defined inside fault-injection-gated regions of
/// `crates/core/src`.
fn collect_gated_symbols(ws: &Workspace) -> BTreeSet<String> {
    let mut gated = BTreeSet::new();
    for file in &ws.files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        if !p.contains("crates/core/src/") {
            continue;
        }
        let code = file.code_indexes();
        for (ci, &i) in code.iter().enumerate() {
            if !file.in_fault_gate(i) {
                continue;
            }
            let t = &file.tokens[i];
            // `fn name` / `struct Name` / ... inside the gate.
            if t.kind == TokenKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()) {
                if let Some(&n) = code.get(ci + 1) {
                    let name = &file.tokens[n];
                    if name.kind == TokenKind::Ident && is_interesting(&name.text) {
                        gated.insert(name.text.clone());
                    }
                }
            }
            // Gated struct fields and method names mentioning "fault"
            // (e.g. `fault_plan: Option<FaultPlan>`): the ident itself is the
            // definition when followed by `:` or `(`.
            if t.kind == TokenKind::Ident
                && mentions_fault(&t.text)
                && matches!(
                    code.get(ci + 1),
                    Some(&n) if file.tokens[n].is_punct(':') || file.tokens[n].is_punct('(')
                )
            {
                gated.insert(t.text.clone());
            }
        }
    }
    gated
}

/// Only track symbols that are plausibly part of the fault-injection surface:
/// type-cased names or anything mentioning "fault". Tracking every gated
/// local would flood the use-pass with generic helper names.
fn is_interesting(name: &str) -> bool {
    name.chars().next().is_some_and(char::is_uppercase) || mentions_fault(name)
}

/// Does the identifier contain "fault" as a whole word segment? A plain
/// substring test would swallow `default` (de-**fault**), so snake_case
/// names are split on `_` and CamelCase names checked for a capitalized
/// `Fault` segment.
fn mentions_fault(name: &str) -> bool {
    name.split('_').any(|seg| seg.eq_ignore_ascii_case("fault")) || name.contains("Fault")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(p, s)| SourceFile::parse(PathBuf::from(p), s))
                .collect(),
        }
    }

    const GATED_DEF: &str = "#[cfg(feature = \"fault-injection\")]\npub struct FaultPlan { pub after: usize }\n#[cfg(feature = \"fault-injection\")]\npub fn with_fault_plan(p: FaultPlan) {}\n";

    #[test]
    fn gated_definition_and_gated_use_pass() {
        let w = ws(&[(
            "crates/core/src/supervisor.rs",
            &format!(
                "{GATED_DEF}#[cfg(feature = \"fault-injection\")]\nfn apply(p: FaultPlan) {{ with_fault_plan(p); }}\n"
            ),
        )]);
        assert!(check(&w).is_empty());
    }

    #[test]
    fn ungated_use_trips() {
        let w = ws(&[
            ("crates/core/src/supervisor.rs", GATED_DEF),
            (
                "crates/core/src/engine.rs",
                "fn run() { let p = FaultPlan { after: 3 }; }",
            ),
        ]);
        let d = check(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("FaultPlan"));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn ungated_use_in_other_crate_trips() {
        let w = ws(&[
            ("crates/core/src/supervisor.rs", GATED_DEF),
            (
                "crates/cli/src/commands.rs",
                "fn run() { core::with_fault_plan(p); }",
            ),
        ]);
        assert_eq!(check(&w).len(), 1);
    }

    #[test]
    fn test_code_may_use_gated_symbols() {
        let w = ws(&[
            ("crates/core/src/supervisor.rs", GATED_DEF),
            (
                "crates/core/src/engine.rs",
                "#[cfg(test)]\nmod tests { use super::FaultPlan; }",
            ),
        ]);
        assert!(check(&w).is_empty());
    }

    #[test]
    fn gated_field_names_are_collected() {
        let w = ws(&[
            (
                "crates/core/src/supervisor.rs",
                "pub struct Supervisor {\n    retries: usize,\n    #[cfg(feature = \"fault-injection\")]\n    fault_plan: Option<FaultPlan>,\n}\n",
            ),
            (
                "crates/core/src/engine.rs",
                "fn f(s: &Supervisor) { let _ = s.fault_plan; }",
            ),
        ]);
        let d = check(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("fault_plan"));
    }

    #[test]
    fn no_gated_symbols_means_no_findings() {
        let w = ws(&[(
            "crates/core/src/engine.rs",
            "fn run() { let p = FaultPlan { after: 3 }; }",
        )]);
        assert!(
            check(&w).is_empty(),
            "without gated definitions there is nothing to protect"
        );
    }
}
