//! **panic-freedom** — a worker thread that panics takes a request (or a
//! whole server) down with it, so the serve crate and the core library may
//! not contain reachable panic sites outside tests.
//!
//! Banned in non-test code of `crates/serve/src` and `crates/core/src`:
//! `.unwrap()`, `.expect(...)`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`. In `crates/serve/src` (the request path) bare slice
//! indexing `x[i]` is banned too — a bad index is just a panic with extra
//! steps; use `.get(i)` or prove the bound and allowlist it.
//!
//! Provably-infallible sites stay, but must carry an inline
//! `// audit: allow(panic-freedom) — <why it cannot fire>` so the proof is
//! written down next to the code it protects.

use super::{RuleId, Workspace};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Run the rule over every in-scope file.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        let serve_scope = p.contains("crates/serve/src/");
        let core_scope = p.contains("crates/core/src/");
        if !serve_scope && !core_scope {
            continue;
        }
        check_file(file, serve_scope, &mut out);
    }
    out
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn check_file(file: &SourceFile, serve_scope: bool, out: &mut Vec<Diagnostic>) {
    let rule = RuleId::PanicFreedom.id();
    let code = file.code_indexes();
    for (ci, &i) in code.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        let t = &file.tokens[i];

        // `.unwrap()` / `.expect(`.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && ci > 0
            && file.tokens[code[ci - 1]].is_punct('.')
            && matches!(code.get(ci + 1), Some(&n) if file.tokens[n].is_punct('('))
        {
            out.push(Diagnostic::new(
                rule,
                &file.path,
                t.line,
                format!(
                    ".{}() panics on the error path; return a typed error instead \
                     (or prove infallibility and allowlist with a justification)",
                    t.text
                ),
            ));
            continue;
        }

        // panic-family macros.
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && matches!(code.get(ci + 1), Some(&n) if file.tokens[n].is_punct('!'))
        {
            out.push(Diagnostic::new(
                rule,
                &file.path,
                t.line,
                format!(
                    "{}! aborts the worker thread; return a typed error instead",
                    t.text
                ),
            ));
            continue;
        }

        // Bare slice indexing in the serve request path.
        if serve_scope && t.is_punct('[') && ci > 0 {
            let prev = &file.tokens[code[ci - 1]];
            let indexes_expression = prev.kind == TokenKind::Ident && !is_keyword(&prev.text)
                || prev.is_punct(')')
                || prev.is_punct(']');
            if indexes_expression {
                out.push(Diagnostic::new(
                    rule,
                    &file.path,
                    t.line,
                    "bare slice indexing panics out of bounds in the request path; \
                     use .get()/.get_mut() or prove the bound and allowlist",
                ));
            }
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`return [a, b]`, `in [1, 2]`, ...).
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "return" | "in" | "if" | "else" | "match" | "break" | "as" | "mut" | "ref" | "move" | "box"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn ws(path: &str, src: &str) -> Workspace {
        Workspace {
            files: vec![SourceFile::parse(PathBuf::from(path), src)],
        }
    }

    #[test]
    fn trips_on_unwrap_and_expect() {
        let w = ws(
            "crates/serve/src/server.rs",
            "fn f() { x.unwrap(); y.expect(\"m\"); }",
        );
        let diags = check(&w);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains(".unwrap()"));
        assert!(diags[1].message.contains(".expect()"));
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let w = ws(
            "crates/serve/src/server.rs",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(|p| p.into_inner()); z.unwrap_or_default(); }",
        );
        assert!(check(&w).is_empty());
    }

    #[test]
    fn trips_on_panic_macros() {
        let w = ws(
            "crates/core/src/rule.rs",
            "fn f() { panic!(\"boom\"); unreachable!(); }",
        );
        assert_eq!(check(&w).len(), 2);
    }

    #[test]
    fn slice_indexing_flagged_in_serve_only() {
        let src = "fn f(xs: &[f64], i: usize) -> f64 { xs[i] }";
        assert_eq!(check(&ws("crates/serve/src/server.rs", src)).len(), 1);
        assert!(
            check(&ws("crates/core/src/bitset.rs", src)).is_empty(),
            "core kernels index freely; only the request path is restricted"
        );
    }

    #[test]
    fn non_index_brackets_are_fine() {
        let w = ws(
            "crates/serve/src/server.rs",
            "#[derive(Debug)]\nstruct S { xs: [u64; 4] }\nfn f() -> Vec<u8> { vec![0u8; 4] }\nfn g(s: &[u8]) {}\n",
        );
        assert!(check(&w).is_empty());
    }

    #[test]
    fn tests_and_doc_comments_are_exempt() {
        let w = ws(
            "crates/serve/src/lib.rs",
            "//! ```\n//! x.unwrap();\n//! ```\n/// s.expect(\"m\")\nfn ok() {}\n#[cfg(test)]\nmod tests { fn t() { a.unwrap(); b[0]; } }\n",
        );
        assert!(check(&w).is_empty());
    }

    #[test]
    fn allowlist_suppression_is_applied_by_runner() {
        // The rule itself reports raw hits; suppression is the runner's job.
        let w = ws(
            "crates/serve/src/stats.rs",
            "// audit: allow(panic-freedom) — index clamped above\nfn f() { b[i]; }",
        );
        assert_eq!(check(&w).len(), 1);
        assert!(w.files[0].is_allowed("panic-freedom", 2));
    }
}
