//! **lock-discipline** — in `crates/serve/src`, a `RwLock`/`Mutex` guard
//! must never be held across a channel send or socket I/O call.
//!
//! The serving design depends on it: handlers clone the slot's `Arc` under a
//! read lock and then work lock-free, so a hot reload can never block (or be
//! blocked by) a slow client. A guard held across `send`/`write_all`/...
//! couples lock hold time to peer behavior — the classic path to a stalled
//! registry swap.
//!
//! Detection is lexical but scope-aware: a guard is born at a `.read()`,
//! `.write()`, or `.lock()` call with an empty argument list; a `let`-bound
//! guard lives to the end of its enclosing block (or an explicit
//! `drop(name)`), a temporary guard to the end of its statement. Any I/O
//! identifier invoked while a guard is live is a finding.

use super::{RuleId, Workspace};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Channel and socket operations that must not run under a guard.
const IO_CALLS: [&str; 14] = [
    "send",
    "try_send",
    "recv",
    "try_recv",
    "write_all",
    "write_fmt",
    "flush",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "write_response",
    "read_request",
    "connect",
];

/// Run the rule over every in-scope file.
pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        let p = file.path.to_string_lossy().replace('\\', "/");
        if !p.contains("crates/serve/src/") {
            continue;
        }
        check_file(file, &mut out);
    }
    out
}

#[derive(Debug)]
struct LiveGuard {
    /// Brace depth at which the guard was created; a `let` guard dies when
    /// the depth drops below this.
    depth: usize,
    /// Binding name for `let` guards (`drop(name)` releases them); `None`
    /// for temporaries, which die at the next `;`.
    name: Option<String>,
    /// Line of the acquiring call, for the diagnostic.
    line: u32,
    /// The acquiring method (`read`/`write`/`lock`).
    acquired_by: String,
}

fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let rule = RuleId::LockDiscipline.id();
    let code = file.code_indexes();
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;

    for (ci, &i) in code.iter().enumerate() {
        if file.in_test(i) {
            continue;
        }
        let t = &file.tokens[i];

        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            // A statement cannot span its enclosing block's close: both
            // temporaries and out-of-scope `let` guards die here.
            guards.retain(|g| g.name.is_some() && g.depth <= depth);
        } else if t.is_punct(';') {
            guards.retain(|g| g.name.is_some());
        }

        // Guard birth: `.read()` / `.write()` / `.lock()` with no arguments.
        if (t.is_ident("read") || t.is_ident("write") || t.is_ident("lock"))
            && ci > 0
            && file.tokens[code[ci - 1]].is_punct('.')
            && matches!(code.get(ci + 1), Some(&a) if file.tokens[a].is_punct('('))
            && matches!(code.get(ci + 2), Some(&b) if file.tokens[b].is_punct(')'))
        {
            // A `let` binding holds the guard only when the call chain ends
            // at the acquire (possibly via guard-preserving adapters like
            // `.unwrap()` / `.unwrap_or_else(...)`); a chain that continues
            // into any other method produces a temporary guard instead.
            let name = if chain_ends_in_guard(file, &code, ci) {
                let_binding_name(file, &code, ci)
            } else {
                None
            };
            guards.push(LiveGuard {
                depth,
                name,
                line: t.line,
                acquired_by: t.text.clone(),
            });
            continue;
        }

        // Explicit `drop(name)` releases a named guard.
        if t.is_ident("drop")
            && matches!(code.get(ci + 1), Some(&a) if file.tokens[a].is_punct('('))
        {
            if let Some(&arg) = code.get(ci + 2) {
                let arg = &file.tokens[arg];
                guards.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
            }
            continue;
        }

        // I/O under a live guard.
        if IO_CALLS.contains(&t.text.as_str())
            && matches!(code.get(ci + 1), Some(&a) if file.tokens[a].is_punct('('))
        {
            if let Some(g) = guards.last() {
                out.push(Diagnostic::new(
                    rule,
                    &file.path,
                    t.line,
                    format!(
                        "{}() runs while a lock guard (acquired via .{}() on line {}) is live; \
                         clone what you need, drop the guard, then do I/O",
                        t.text, g.acquired_by, g.line
                    ),
                ));
            }
        }
    }
}

/// Adapters that pass the guard through: the value after the chain is still
/// the lock guard.
const GUARD_ADAPTERS: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "into_inner"];

/// Does the method chain starting at the acquire end while still holding the
/// guard (directly, or via [`GUARD_ADAPTERS`])?
fn chain_ends_in_guard(file: &SourceFile, code: &[usize], acquire_ci: usize) -> bool {
    // Step past the acquire's `()`.
    let mut j = acquire_ci + 3;
    loop {
        // At a chain boundary: guard-valued unless another method follows.
        let Some(&dot) = code.get(j) else { return true };
        if !file.tokens[dot].is_punct('.') {
            return true;
        }
        let Some(&m) = code.get(j + 1) else {
            return true;
        };
        if !GUARD_ADAPTERS.contains(&file.tokens[m].text.as_str()) {
            return false;
        }
        // Skip the adapter's balanced argument list.
        let Some(&open) = code.get(j + 2) else {
            return true;
        };
        if !file.tokens[open].is_punct('(') {
            return false;
        }
        let mut depth = 1usize;
        j += 3;
        while j < code.len() && depth > 0 {
            if file.tokens[code[j]].is_punct('(') {
                depth += 1;
            } else if file.tokens[code[j]].is_punct(')') {
                depth -= 1;
            }
            j += 1;
        }
    }
}

/// If the guard-acquiring expression is the initializer of a `let`, return
/// the binding name: scan back to the statement start and expect
/// `let [mut] <name> ... = ...`.
fn let_binding_name(file: &SourceFile, code: &[usize], acquire_ci: usize) -> Option<String> {
    let mut j = acquire_ci;
    let mut paren = 0usize;
    while j > 0 {
        j -= 1;
        let t = &file.tokens[code[j]];
        if t.is_punct(')') {
            paren += 1;
        } else if t.is_punct('(') {
            if paren == 0 {
                return None; // crossed into an enclosing call: not a let init
            }
            paren -= 1;
        } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        } else if t.is_ident("let") {
            let mut k = j + 1;
            if matches!(code.get(k), Some(&m) if file.tokens[m].is_ident("mut")) {
                k += 1;
            }
            return code.get(k).map(|&n| file.tokens[n].text.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let w = Workspace {
            files: vec![SourceFile::parse(
                PathBuf::from("crates/serve/src/registry.rs"),
                src,
            )],
        };
        check(&w)
    }

    #[test]
    fn send_under_let_guard_trips() {
        let d = diags(
            "fn f(&self) {\n    let slots = self.slots.read();\n    tx.send(slots.len());\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("send()"));
        assert!(d[0].message.contains(".read() on line 2"));
    }

    #[test]
    fn io_after_scope_exit_is_fine() {
        let d = diags(
            "fn f(&self) {\n    let n = {\n        let slots = self.slots.read();\n        slots.len()\n    };\n    tx.send(n);\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn drop_releases_named_guard() {
        let d = diags(
            "fn f(&self) {\n    let g = self.slots.write();\n    drop(g);\n    stream.write_all(b\"x\");\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn temporary_guard_dies_at_its_statement() {
        let d = diags("fn f(&self) { let n = self.slots.read().len(); tx.send(n); }\n");
        assert!(d.is_empty(), "temporary dies at its `;`: {d:?}");
    }

    #[test]
    fn io_inside_guard_holding_statement_trips() {
        let d = diags("fn f(&self) { self.slots.read().iter().for_each(|e| tx.send(e).ok()); }\n");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn let_bound_adapter_chain_stays_a_guard() {
        let d = diags(
            "fn f(&self) {\n    let slots = self.slots.write().unwrap_or_else(std::sync::PoisonError::into_inner);\n    tx.send(slots.len());\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains(".write() on line 2"));
    }

    #[test]
    fn clean_clone_then_send_passes() {
        let d = diags(
            "fn get(&self) -> Option<Arc<Entry>> {\n    self.slots.read().get(name).cloned()\n}\nfn notify(&self, tx: &Sender<u64>) {\n    let v = self.get();\n    tx.send(1).ok();\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn io_read_with_args_is_not_a_guard() {
        let d = diags(
            "fn f(r: &mut impl Read, tx: &Sender<u8>) {\n    let mut buf = [0u8; 4];\n    r.read_exact(&mut buf);\n    tx.send(buf[0]);\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn out_of_scope_core_is_ignored() {
        let w = Workspace {
            files: vec![SourceFile::parse(
                PathBuf::from("crates/core/src/engine.rs"),
                "fn f() { let g = m.lock(); tx.send(1); }",
            )],
        };
        assert!(check(&w).is_empty());
    }
}
