//! The invariant catalog: one module per rule, each a pure function from a
//! [`Workspace`] to diagnostics. Allowlist filtering happens centrally in
//! [`crate::run_rules`], so rules report every raw hit.

pub mod cfg_hygiene;
pub mod determinism;
pub mod locks;
pub mod panics;
pub mod taxonomy;

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Stable identifiers of every rule the auditor ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleId {
    /// Ban ambient time, unordered containers, and ambient randomness in the
    /// evolution hot path (and unordered containers in the serve wire path).
    Determinism,
    /// Ban `unwrap`/`expect`/`panic!`-family (and slice indexing in the
    /// serve request path) outside tests.
    PanicFreedom,
    /// Flag lock guards held across channel sends or socket I/O.
    LockDiscipline,
    /// Every serve `ErrorKind` maps to exactly one status arm and appears in
    /// at least one integration test.
    ErrorTaxonomy,
    /// `fault-injection` symbols must stay behind the feature gate.
    CfgHygiene,
    /// Allowlist directives must name known rules and carry a justification.
    AllowSyntax,
}

/// All rules, in reporting order.
pub const ALL_RULES: [RuleId; 6] = [
    RuleId::Determinism,
    RuleId::PanicFreedom,
    RuleId::LockDiscipline,
    RuleId::ErrorTaxonomy,
    RuleId::CfgHygiene,
    RuleId::AllowSyntax,
];

impl RuleId {
    /// Kebab-case identifier used in diagnostics and `allow(...)` syntax.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::Determinism => "determinism",
            RuleId::PanicFreedom => "panic-freedom",
            RuleId::LockDiscipline => "lock-discipline",
            RuleId::ErrorTaxonomy => "error-taxonomy",
            RuleId::CfgHygiene => "cfg-hygiene",
            RuleId::AllowSyntax => "allow-syntax",
        }
    }

    /// Parse an identifier back to a rule.
    pub fn from_id(id: &str) -> Option<RuleId> {
        ALL_RULES.into_iter().find(|r| r.id() == id)
    }
}

/// The set of files under audit, with repo-relative paths.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every parsed source file.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// The file whose path ends with `suffix`, if present.
    pub fn file_ending_with(&self, suffix: &str) -> Option<&SourceFile> {
        self.files
            .iter()
            .find(|f| f.path.to_string_lossy().ends_with(suffix))
    }
}

/// Does this repo-relative path sit in a library-source tree (as opposed to
/// `tests/`, `benches/`, `examples/`)?
pub fn in_lib_src(path: &std::path::Path, crate_dir: &str) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains(&format!("crates/{crate_dir}/src/"))
}

/// Is this a test source file (integration tests directory)?
pub fn in_tests_dir(path: &std::path::Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("/tests/")
}

/// Run the allow-syntax meta rule: malformed or unknown-rule directives.
pub fn check_allow_syntax(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        for d in &file.directives {
            if d.rules.is_empty() {
                out.push(Diagnostic::new(
                    RuleId::AllowSyntax.id(),
                    &file.path,
                    d.line,
                    "allow directive names no rules; expected `audit: allow(<rule>) — <justification>`",
                ));
                continue;
            }
            for r in &d.rules {
                if RuleId::from_id(r).is_none() {
                    out.push(Diagnostic::new(
                        RuleId::AllowSyntax.id(),
                        &file.path,
                        d.line,
                        format!("allow directive names unknown rule {r:?}"),
                    ));
                }
            }
            if d.justification.is_empty() {
                out.push(Diagnostic::new(
                    RuleId::AllowSyntax.id(),
                    &file.path,
                    d.line,
                    "allowlist entries must carry a justification after the rule list",
                ));
            }
        }
    }
    out
}
