//! A lightweight Rust token scanner — just enough lexical structure for
//! line-accurate invariant lints, with no syn/proc-macro machinery (the
//! build environment is offline; the auditor carries the same
//! vendored-only discipline as the rest of the workspace).
//!
//! The scanner understands the token classes that matter for *not lying
//! about code*: line and (nested) block comments, string/char/byte/raw
//! literals, lifetimes vs char literals, raw identifiers, numbers, and
//! single-character punctuation. Everything a rule inspects is a real code
//! token; text inside comments or string literals can never trip a lint.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (identifier name, comment body, literal text, or the
    /// punctuation character).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are unescaped: `r#type` → `type`).
    Ident,
    /// A single punctuation character.
    Punct,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), text is the
    /// literal's *contents* (escapes left as written).
    Str,
    /// Char or byte literal.
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Number,
    /// `// …` comment, including doc comments (`///`, `//!`); text excludes
    /// the leading slashes.
    LineComment,
    /// `/* … */` comment (nesting handled); text excludes the delimiters.
    BlockComment,
    /// Lifetime (`'a`) or loop label; text excludes the quote.
    Lifetime,
}

impl Token {
    /// Is this token a comment of either flavor?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Is this an identifier with exactly this name?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// Tokenize Rust source. The scanner is total: any byte sequence produces a
/// token stream (unterminated literals consume to end of input), so a
/// half-written fixture can never panic the auditor.
pub fn tokenize(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advance over `chars[from..to]`, counting newlines into `line`.
    fn count_lines(chars: &[char], from: usize, to: usize, line: &mut u32) {
        for &c in &chars[from..to] {
            if c == '\n' {
                *line += 1;
            }
        }
    }

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;

        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let mut j = i + 2;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text: chars[i + 2..j].iter().collect(),
                    line: start_line,
                });
                i = j;
                continue;
            }
            if chars[i + 1] == '*' {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && j + 1 < chars.len() && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < chars.len() && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                count_lines(&chars, i, j, &mut line);
                let end = j.saturating_sub(2).max(i + 2);
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    text: chars[i + 2..end].iter().collect(),
                    line: start_line,
                });
                i = j;
                continue;
            }
        }

        // Raw strings and raw identifiers: r"…", r#"…"#, br"…", r#ident.
        if (c == 'r' || c == 'b') && i + 1 < chars.len() {
            // Figure out the prefix shape without committing yet.
            let mut j = i;
            if c == 'b' && j + 1 < chars.len() && chars[j + 1] == 'r' {
                j += 2;
            } else if c == 'r' || c == 'b' {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < chars.len() && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let at_quote = j < chars.len() && chars[j] == '"';
            let raw_prefix = c == 'r' || (c == 'b' && i + 1 < chars.len() && chars[i + 1] == 'r');
            if at_quote && raw_prefix {
                // Raw string: scan for closing quote + same number of hashes.
                let body_start = j + 1;
                let mut k = body_start;
                'raw: while k < chars.len() {
                    if chars[k] == '"' {
                        let mut h = 0usize;
                        while k + 1 + h < chars.len() && chars[k + 1 + h] == '#' && h < hashes {
                            h += 1;
                        }
                        if h == hashes {
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                let body_end = k.min(chars.len());
                count_lines(&chars, i, body_end, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: chars[body_start..body_end].iter().collect(),
                    line: start_line,
                });
                i = (body_end + 1 + hashes).min(chars.len());
                continue;
            }
            // Raw identifier r#name.
            if c == 'r' && hashes == 1 && j < chars.len() && is_ident_start(chars[j]) {
                let mut k = j;
                while k < chars.len() && is_ident_continue(chars[k]) {
                    k += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[j..k].iter().collect(),
                    line: start_line,
                });
                i = k;
                continue;
            }
            // Otherwise fall through: plain ident starting with r/b, or b"…".
        }

        // Byte string b"…" (non-raw).
        if c == 'b' && i + 1 < chars.len() && chars[i + 1] == '"' {
            let (text, next, nl) = scan_quoted(&chars, i + 1, '"');
            line += nl;
            tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line: start_line,
            });
            i = next;
            continue;
        }
        // Byte char b'…'.
        if c == 'b' && i + 1 < chars.len() && chars[i + 1] == '\'' {
            let (text, next, nl) = scan_quoted(&chars, i + 1, '\'');
            line += nl;
            tokens.push(Token {
                kind: TokenKind::Char,
                text,
                line: start_line,
            });
            i = next;
            continue;
        }

        // String literal.
        if c == '"' {
            let (text, next, nl) = scan_quoted(&chars, i, '"');
            line += nl;
            tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line: start_line,
            });
            i = next;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote right after.
            if i + 1 < chars.len() && is_ident_start(chars[i + 1]) {
                let mut k = i + 2;
                while k < chars.len() && is_ident_continue(chars[k]) {
                    k += 1;
                }
                // 'a' is a char literal; 'abc (no closing quote) is a lifetime.
                if !(k < chars.len() && chars[k] == '\'') {
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: chars[i + 1..k].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
            let (text, next, nl) = scan_quoted(&chars, i, '\'');
            line += nl;
            tokens.push(Token {
                kind: TokenKind::Char,
                text,
                line: start_line,
            });
            i = next;
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let mut k = i + 1;
            while k < chars.len() && is_ident_continue(chars[k]) {
                k += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[i..k].iter().collect(),
                line: start_line,
            });
            i = k;
            continue;
        }

        // Number: digits, then a conservative tail (hex/bin/oct/float/suffix).
        if c.is_ascii_digit() {
            let mut k = i + 1;
            while k < chars.len() {
                let d = chars[k];
                if d.is_ascii_alphanumeric() || d == '_' {
                    k += 1;
                } else if d == '.'
                    && k + 1 < chars.len()
                    && chars[k + 1].is_ascii_digit()
                    && !matches!(chars.get(k.wrapping_sub(1)), Some('.'))
                {
                    // Decimal point followed by a digit (not a `..` range).
                    k += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[i..k].iter().collect(),
                line: start_line,
            });
            i = k;
            continue;
        }

        // Single-character punctuation.
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line: start_line,
        });
        i += 1;
    }
    tokens
}

/// Scan a quoted literal starting at the opening quote index; returns the
/// contents, the index just past the closing quote, and newlines consumed.
fn scan_quoted(chars: &[char], open: usize, quote: char) -> (String, usize, u32) {
    let mut k = open + 1;
    let mut newlines = 0u32;
    while k < chars.len() {
        match chars[k] {
            '\\' => k += 2,
            '\n' => {
                newlines += 1;
                k += 1;
            }
            c if c == quote => {
                return (chars[open + 1..k].iter().collect(), k + 1, newlines);
            }
            _ => k += 1,
        }
    }
    (
        chars[(open + 1).min(chars.len())..].iter().collect(),
        chars.len(),
        newlines,
    )
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let ts = kinds("let x = 42 + y_2;");
        assert_eq!(
            ts,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Number, "42".into()),
                (TokenKind::Punct, "+".into()),
                (TokenKind::Ident, "y_2".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn comments_do_not_leak_code_tokens() {
        let ts = kinds("// unwrap() here is fine\nok();");
        assert_eq!(ts[0].0, TokenKind::LineComment);
        assert!(ts[0].1.contains("unwrap"));
        assert_eq!(ts[1], (TokenKind::Ident, "ok".into()));
    }

    #[test]
    fn nested_block_comments() {
        let ts = kinds("/* a /* b */ c */ x");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].0, TokenKind::BlockComment);
        assert_eq!(ts[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn strings_swallow_their_contents() {
        let ts = kinds(r#"let s = "unwrap() \" quoted"; done"#);
        assert_eq!(ts[3].0, TokenKind::Str);
        assert_eq!(ts[5], (TokenKind::Ident, "done".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ts = kinds(r###"let s = r#"a "quoted" b"#; x"###);
        assert_eq!(ts[3].0, TokenKind::Str);
        assert_eq!(ts[3].1, r#"a "quoted" b"#);
        assert_eq!(ts[5], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'q'; }");
        assert!(ts
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "a"));
        assert!(ts.iter().any(|(k, t)| *k == TokenKind::Char && t == "q"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let ts = tokenize("a\nb\n\nc");
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let ts = tokenize("let s = \"a\nb\";\nafter");
        let after = ts.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn raw_identifier_unescapes() {
        let ts = kinds("r#type x");
        assert_eq!(ts[0], (TokenKind::Ident, "type".into()));
    }

    #[test]
    fn unterminated_string_is_total() {
        let ts = tokenize("let s = \"never closed");
        assert_eq!(ts.last().unwrap().kind, TokenKind::Str);
    }
}
