//! Per-file source model: the token stream plus the structural facts every
//! rule needs — which tokens live inside `#[cfg(test)]` items, which live
//! inside `#[cfg(feature = "fault-injection")]` items, and which lines carry
//! an inline allowlist directive.
//!
//! # Allowlist syntax
//!
//! ```text
//! // audit: allow(rule-name[, other-rule]) — justification text
//! ```
//!
//! A directive on its own line covers the next source line; a trailing
//! directive covers its own line. The justification is mandatory: a bare
//! `allow(...)` with no prose is itself reported under the `allow-syntax`
//! rule, as is a directive naming a rule the auditor does not know.

use crate::lexer::{tokenize, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// A parsed allowlist directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rules the directive suppresses.
    pub rules: Vec<String>,
    /// Justification text after the rule list (may be empty — that is an
    /// `allow-syntax` finding).
    pub justification: String,
    /// Line the directive's comment starts on.
    pub line: u32,
}

/// One source file prepared for auditing.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in diagnostics (repo-relative when possible).
    pub path: PathBuf,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Token indexes inside `#[cfg(test)]`-gated items (including nested
    /// content of `mod tests`).
    test_mask: Vec<bool>,
    /// Token indexes inside `#[cfg(feature = "fault-injection")]`-gated
    /// items.
    fault_gate_mask: Vec<bool>,
    /// `line → rules allowed on that line` from inline directives.
    allows: BTreeMap<u32, BTreeSet<String>>,
    /// All directives, for syntax validation.
    pub directives: Vec<AllowDirective>,
}

impl SourceFile {
    /// Tokenize and analyze one file.
    pub fn parse(path: PathBuf, source: &str) -> SourceFile {
        let tokens = tokenize(source);
        let test_mask = gated_mask(&tokens, &GateKind::Test);
        let fault_gate_mask = gated_mask(&tokens, &GateKind::Feature("fault-injection"));
        let directives = parse_directives(&tokens);
        let mut allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        for d in &directives {
            // The directive covers its own line (trailing form) and the next
            // line (standalone form).
            for line in [d.line, d.line + 1] {
                allows
                    .entry(line)
                    .or_default()
                    .extend(d.rules.iter().cloned());
            }
        }
        SourceFile {
            path,
            tokens,
            test_mask,
            fault_gate_mask,
            allows,
            directives,
        }
    }

    /// Is token `i` inside a `#[cfg(test)]`-gated item?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Is token `i` inside a `#[cfg(feature = "fault-injection")]`-gated
    /// item?
    pub fn in_fault_gate(&self, i: usize) -> bool {
        self.fault_gate_mask.get(i).copied().unwrap_or(false)
    }

    /// Is `rule` allowlisted on `line` by an inline directive?
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(&line).is_some_and(|set| set.contains(rule))
    }

    /// Indexes of non-comment tokens (the stream most rules walk).
    pub fn code_indexes(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_comment())
            .collect()
    }
}

/// What a `#[cfg(...)]` attribute must mention for its item to be masked.
enum GateKind {
    /// `test` appears as a bare ident in the cfg predicate.
    Test,
    /// `feature = "<name>"` appears in the cfg predicate.
    Feature(&'static str),
}

impl GateKind {
    /// Does the token slice of a cfg predicate satisfy this gate?
    fn matches(&self, predicate: &[Token]) -> bool {
        match self {
            GateKind::Test => predicate.iter().any(|t| t.is_ident("test")),
            GateKind::Feature(name) => predicate.windows(3).any(|w| {
                w[0].is_ident("feature")
                    && w[1].is_punct('=')
                    && w[2].kind == TokenKind::Str
                    && w[2].text == *name
            }),
        }
    }
}

/// Mark every token belonging to an item gated by a matching `#[cfg(...)]`.
///
/// Item extent: after the attribute (and any further attributes), the item
/// runs to the first `,` or `;` at nesting depth zero, or through the first
/// complete `{...}` block at depth zero — whichever closes first. That covers
/// functions, structs, enums, mods, impls, struct fields, and attributed
/// statements alike.
fn gated_mask(tokens: &[Token], gate: &GateKind) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut c = 0usize;
    while c < code.len() {
        // Look for `#` `[` `cfg` `(` … `)` `]`.
        if !(tokens[code[c]].is_punct('#')
            && c + 3 < code.len()
            && tokens[code[c + 1]].is_punct('[')
            && tokens[code[c + 2]].is_ident("cfg")
            && tokens[code[c + 3]].is_punct('('))
        {
            c += 1;
            continue;
        }
        // Collect the predicate tokens up to the matching `)`.
        let mut depth = 1usize;
        let mut p = c + 4;
        let pred_start = p;
        while p < code.len() && depth > 0 {
            if tokens[code[p]].is_punct('(') {
                depth += 1;
            } else if tokens[code[p]].is_punct(')') {
                depth -= 1;
            }
            p += 1;
        }
        let predicate: Vec<Token> = code[pred_start..p.saturating_sub(1)]
            .iter()
            .map(|&i| tokens[i].clone())
            .collect();
        // Skip the closing `]`.
        let mut q = p;
        if q < code.len() && tokens[code[q]].is_punct(']') {
            q += 1;
        }
        if !gate.matches(&predicate) {
            c = q;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        while q + 1 < code.len()
            && tokens[code[q]].is_punct('#')
            && tokens[code[q + 1]].is_punct('[')
        {
            let mut d = 0usize;
            q += 1; // at `[`
            loop {
                if tokens[code[q]].is_punct('[') {
                    d += 1;
                } else if tokens[code[q]].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        q += 1;
                        break;
                    }
                }
                q += 1;
                if q >= code.len() {
                    break;
                }
            }
        }
        // Walk the item: ends at `,`/`;` at depth 0, or after the first
        // complete brace block at depth 0.
        let item_start = q;
        let mut brace_depth = 0usize;
        let mut paren_depth = 0usize;
        let mut end = q;
        while end < code.len() {
            let t = &tokens[code[end]];
            if t.is_punct('{') {
                brace_depth += 1;
            } else if t.is_punct('}') {
                brace_depth = brace_depth.saturating_sub(1);
                if brace_depth == 0 {
                    end += 1;
                    break;
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                paren_depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                if paren_depth == 0 {
                    // Closing a scope the item did not open (e.g. a gated
                    // struct field at the end of the declaration list).
                    break;
                }
                paren_depth -= 1;
            } else if (t.is_punct(',') || t.is_punct(';')) && brace_depth == 0 && paren_depth == 0 {
                end += 1;
                break;
            }
            end += 1;
        }
        for &i in &code[item_start..end.min(code.len())] {
            mask[i] = true;
        }
        c = end.max(q + 1);
    }
    mask
}

/// Extract `audit: allow(...)` directives from comment tokens.
fn parse_directives(tokens: &[Token]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment {
            continue;
        }
        let text = t.text.trim();
        let Some(rest) = text.strip_prefix("audit:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let (rules_part, justification) = match rest.strip_prefix('(') {
            Some(r) => match r.split_once(')') {
                Some((inside, after)) => (inside, after),
                None => (r, ""),
            },
            None => ("", rest),
        };
        let rules: Vec<String> = rules_part
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        // Strip separator punctuation (`—`, `-`, `:`) before judging whether
        // a justification was given.
        let justification = justification
            .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
            .trim()
            .to_string();
        out.push(AllowDirective {
            rules,
            justification,
            line: t.line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn test_mod_is_masked() {
        let f = file(
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n",
        );
        let unwraps: Vec<(usize, bool)> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| (i, f.in_test(i)))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].1, "live code must not be masked");
        assert!(unwraps[1].1, "test mod body must be masked");
    }

    #[test]
    fn cfg_all_test_is_masked() {
        let f = file("#[cfg(all(test, feature = \"x\"))]\nmod tests { fn t() { a.unwrap(); } }\n");
        let i = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test(i));
    }

    #[test]
    fn fault_gate_masks_field_and_fn() {
        let f = file(
            "struct S {\n    #[cfg(feature = \"fault-injection\")]\n    plan: FaultPlan,\n    other: u32,\n}\n#[cfg(feature = \"fault-injection\")]\nfn gated() { FaultPlan::new(); }\nfn open() { }\n",
        );
        let plans: Vec<(usize, bool)> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("FaultPlan"))
            .map(|(i, _)| (i, f.in_fault_gate(i)))
            .collect();
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|&(_, gated)| gated));
        let other = f.tokens.iter().position(|t| t.is_ident("other")).unwrap();
        assert!(!f.in_fault_gate(other), "field after the gated one is open");
        let open = f.tokens.iter().position(|t| t.is_ident("open")).unwrap();
        assert!(!f.in_fault_gate(open));
    }

    #[test]
    fn allow_directive_covers_own_and_next_line() {
        let f = file("// audit: allow(panic-freedom) — provably infallible\nx.unwrap();\n");
        assert!(f.is_allowed("panic-freedom", 1));
        assert!(f.is_allowed("panic-freedom", 2));
        assert!(!f.is_allowed("panic-freedom", 3));
        assert!(!f.is_allowed("determinism", 2));
    }

    #[test]
    fn allow_directive_multiple_rules() {
        let f = file(
            "let g = m.lock(); // audit: allow(lock-discipline, panic-freedom): held briefly\n",
        );
        assert!(f.is_allowed("lock-discipline", 1));
        assert!(f.is_allowed("panic-freedom", 1));
        assert_eq!(f.directives.len(), 1);
        assert_eq!(f.directives[0].justification, "held briefly");
    }

    #[test]
    fn directive_without_justification_is_recorded_empty() {
        let f = file("// audit: allow(determinism)\nx();\n");
        assert_eq!(f.directives.len(), 1);
        assert!(f.directives[0].justification.is_empty());
    }
}
