//! CLI for the workspace invariant auditor.
//!
//! ```text
//! evoforecast-auditor check [--root DIR] [--format text|json] [--rule NAME]...
//! evoforecast-auditor rules
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error — so CI can
//! distinguish "the code is wrong" from "the gate is broken".

#![forbid(unsafe_code)]

use evoforecast_auditor::rules::{RuleId, ALL_RULES};
use evoforecast_auditor::{diag::Report, run_audit};
use std::io::{self, Write};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
evoforecast-auditor — workspace invariant auditor

USAGE:
    evoforecast-auditor check [--root DIR] [--format text|json] [--rule NAME]...
    evoforecast-auditor rules

OPTIONS:
    --root DIR       workspace root to audit (default: current directory)
    --format FMT     output format: text (default) or json
    --rule NAME      run only the named rule; repeatable

EXIT CODES:
    0  no findings
    1  findings reported
    2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Parse arguments and dispatch; `Err` carries a usage/I-O message (exit 2).
fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "rules" => {
            let mut names = String::new();
            for r in ALL_RULES {
                names.push_str(r.id());
                names.push('\n');
            }
            write_stdout(&names)?;
            Ok(ExitCode::SUCCESS)
        }
        "check" => check(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}; try --help")),
    }
}

/// The `check` subcommand.
fn check(args: &[String]) -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut selected: Vec<RuleId> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--format" => {
                format = match it
                    .next()
                    .ok_or_else(|| "--format needs text|json".to_string())?
                    .as_str()
                {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?}; use text or json")),
                };
            }
            "--rule" => {
                let name = it.next().ok_or_else(|| "--rule needs a name".to_string())?;
                let rule = RuleId::from_id(name)
                    .ok_or_else(|| format!("unknown rule {name:?}; see `rules`"))?;
                if !selected.contains(&rule) {
                    selected.push(rule);
                }
            }
            other => return Err(format!("unknown option {other:?}; try --help")),
        }
    }
    if selected.is_empty() {
        selected.extend(ALL_RULES);
    }

    let report = run_audit(&root, &selected)
        .map_err(|e| format!("failed to audit {}: {e}", root.display()))?;
    render(&report, format)?;
    Ok(if report.clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// Output formats for `check`.
#[derive(Clone, Copy)]
enum Format {
    /// `file:line: [rule] message` lines plus a summary.
    Text,
    /// One JSON [`Report`] object.
    Json,
}

/// Print the report in the chosen format.
fn render(report: &Report, format: Format) -> Result<(), String> {
    let mut text = String::new();
    match format {
        Format::Text => {
            for d in &report.diagnostics {
                text.push_str(&d.render());
                text.push('\n');
            }
            text.push_str(&format!(
                "audit: {} file(s), {} rule(s), {} finding(s) — {}\n",
                report.files_scanned,
                report.rules.len(),
                report.diagnostics.len(),
                if report.clean { "clean" } else { "FAILED" }
            ));
        }
        Format::Json => {
            text = serde_json::to_string_pretty(report)
                .map_err(|e| format!("serializing report: {e}"))?;
            text.push('\n');
        }
    }
    write_stdout(&text)
}

/// Write to stdout, tolerating a closed pipe: `check --format json | head`
/// must end output early, not panic the way `println!` does.
fn write_stdout(text: &str) -> Result<(), String> {
    match io::stdout().lock().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing report: {e}")),
    }
}
