//! Diagnostics: what a rule reports, and the text / JSON renderings.

use serde::Serialize;
use std::path::Path;

/// One finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// Rule identifier (kebab-case, matches the allowlist syntax).
    pub rule: String,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic, rendering the path with forward slashes.
    pub fn new(rule: &str, file: &Path, line: u32, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            file: file.display().to_string().replace('\\', "/"),
            line,
            message: message.into(),
        }
    }

    /// `file:line: [rule] message` — the text-format line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Machine-readable report wrapper for `--format json`.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Rules that ran.
    pub rules: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
    /// All findings, file-then-line ordered.
    pub diagnostics: Vec<Diagnostic>,
    /// `true` when `diagnostics` is empty.
    pub clean: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn render_is_file_line_rule_message() {
        let d = Diagnostic::new("determinism", &PathBuf::from("a/b.rs"), 7, "HashMap used");
        assert_eq!(d.render(), "a/b.rs:7: [determinism] HashMap used");
    }

    #[test]
    fn report_serializes_to_json() {
        let report = Report {
            rules: vec!["determinism".into()],
            files_scanned: 3,
            diagnostics: vec![Diagnostic::new(
                "determinism",
                &PathBuf::from("x.rs"),
                1,
                "m",
            )],
            clean: false,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"files_scanned\""), "{json}");
        assert!(json.contains("\"determinism\""), "{json}");
        assert!(json.contains("\"clean\""), "{json}");
    }
}
