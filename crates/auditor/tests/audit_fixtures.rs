//! End-to-end audits of the on-disk fixture workspaces: every rule trips on
//! the `trip` fixture with file/line-accurate diagnostics, the `clean`
//! fixture (allowlisted exception included) passes, and the CLI's exit-code
//! contract holds.

use evoforecast_auditor::diag::Diagnostic;
use evoforecast_auditor::run_full_audit;
use serde::value::{find, Value};
use std::path::PathBuf;
use std::process::Command;

fn parse_report(stdout: &[u8]) -> Vec<(String, Value)> {
    let text = std::str::from_utf8(stdout).expect("utf-8 stdout");
    let value = serde_json::from_str_value(text).expect("JSON report on stdout");
    value.as_object().expect("report is an object").to_vec()
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn trip_findings() -> Vec<Diagnostic> {
    run_full_audit(&fixture("trip"))
        .expect("trip fixture loads")
        .diagnostics
}

fn of_rule<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

#[test]
fn determinism_trips_on_clock_containers_and_entropy() {
    let diags = trip_findings();
    let d = of_rule(&diags, "determinism");
    assert!(
        d.iter()
            .any(|d| d.file.ends_with("core/src/engine.rs") && d.line == 5),
        "Instant::now at engine.rs:5 expected in {d:?}"
    );
    assert!(d.iter().any(|d| d.message.contains("HashMap")));
    assert!(d.iter().any(|d| d.message.contains("thread_rng")));
}

#[test]
fn panic_freedom_trips_in_core_and_request_path() {
    let diags = trip_findings();
    let d = of_rule(&diags, "panic-freedom");
    assert!(
        d.iter()
            .any(|d| d.file.ends_with("core/src/engine.rs") && d.line == 8),
        "unwrap at engine.rs:8 expected in {d:?}"
    );
    assert!(
        d.iter()
            .any(|d| d.file.ends_with("serve/src/server.rs") && d.line == 9),
        "indexing at server.rs:9 expected in {d:?}"
    );
}

#[test]
fn lock_discipline_trips_on_send_under_guard() {
    let diags = trip_findings();
    let d = of_rule(&diags, "lock-discipline");
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].file.ends_with("serve/src/server.rs"));
    assert_eq!(d[0].line, 5);
    assert!(d[0].message.contains("send()"));
}

#[test]
fn error_taxonomy_trips_on_unmapped_and_untested_variants() {
    let diags = trip_findings();
    let d = of_rule(&diags, "error-taxonomy");
    assert_eq!(d.len(), 2, "{d:?}");
    assert!(d
        .iter()
        .any(|d| d.line == 5 && d.message.contains("Unmapped") && d.message.contains("no arm")));
    assert!(d.iter().any(|d| d.line == 6
        && d.message.contains("Untested")
        && d.message.contains("no integration test")));
}

#[test]
fn cfg_hygiene_trips_on_ungated_use() {
    let diags = trip_findings();
    let d = of_rule(&diags, "cfg-hygiene");
    assert!(
        d.iter().any(|d| d.file.ends_with("core/src/supervisor.rs")
            && d.line == 9
            && d.message.contains("FaultPlan")),
        "{d:?}"
    );
}

#[test]
fn allow_syntax_trips_on_unknown_rule_and_missing_justification() {
    let diags = trip_findings();
    let d = of_rule(&diags, "allow-syntax");
    assert_eq!(d.len(), 2, "{d:?}");
    assert!(d.iter().any(|d| d.message.contains("nonexistent-rule")));
    assert!(d.iter().any(|d| d.message.contains("justification")));
}

#[test]
fn clean_fixture_passes_with_allowlisted_exception() {
    let report = run_full_audit(&fixture("clean")).expect("clean fixture loads");
    assert!(
        report.clean,
        "clean fixture must audit clean, got: {:#?}",
        report.diagnostics
    );
    assert!(report.files_scanned >= 1);
}

#[test]
fn cli_exit_codes_and_json_report() {
    let bin = env!("CARGO_BIN_EXE_evoforecast-auditor");

    let trip = Command::new(bin)
        .args(["check", "--format", "json", "--root"])
        .arg(fixture("trip"))
        .output()
        .expect("run auditor on trip fixture");
    assert_eq!(trip.status.code(), Some(1), "findings exit 1");
    let report = parse_report(&trip.stdout);
    assert_eq!(find(&report, "clean"), Some(&Value::Bool(false)));
    match find(&report, "diagnostics") {
        Some(Value::Array(diags)) => assert!(!diags.is_empty()),
        other => panic!("diagnostics must be a non-empty array, got {other:?}"),
    }
    match find(&report, "rules") {
        Some(Value::Array(rules)) => assert_eq!(rules.len(), 6),
        other => panic!("rules must be an array, got {other:?}"),
    }

    let clean = Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture("clean"))
        .output()
        .expect("run auditor on clean fixture");
    assert_eq!(clean.status.code(), Some(0), "clean exit 0");

    let usage = Command::new(bin)
        .args(["check", "--rule", "no-such-rule"])
        .output()
        .expect("run auditor with bad rule");
    assert_eq!(usage.status.code(), Some(2), "usage error exit 2");

    let io_err = Command::new(bin)
        .args(["check", "--root", "/definitely/not/a/workspace"])
        .output()
        .expect("run auditor on missing root");
    assert_eq!(io_err.status.code(), Some(2), "I/O error exit 2");
}

#[test]
fn single_rule_selection_filters_findings() {
    let bin = env!("CARGO_BIN_EXE_evoforecast-auditor");
    let out = Command::new(bin)
        .args([
            "check",
            "--format",
            "json",
            "--rule",
            "lock-discipline",
            "--root",
        ])
        .arg(fixture("trip"))
        .output()
        .expect("run auditor with one rule");
    assert_eq!(out.status.code(), Some(1));
    let report = parse_report(&out.stdout);
    let Some(Value::Array(diags)) = find(&report, "diagnostics") else {
        panic!("diagnostics must be an array");
    };
    assert!(!diags.is_empty());
    for d in diags {
        let entries = d.as_object().expect("diagnostic object");
        assert_eq!(
            find(entries, "rule").and_then(Value::as_str),
            Some("lock-discipline")
        );
    }
}
