//! Fixture integration test: covers BadRequest and Unmapped, not Untested.

fn exercise() {
    let _ = ErrorKind::BadRequest;
    assert!(body.contains("unmapped"));
}
