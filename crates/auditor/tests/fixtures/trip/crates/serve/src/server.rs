//! Fixture: lock-discipline and request-path indexing violations.

pub fn broadcast(&self) {
    let slots = self.slots.read();
    self.tx.send(slots.len());
}

pub fn first(xs: &[f64]) -> f64 {
    xs[0]
}
