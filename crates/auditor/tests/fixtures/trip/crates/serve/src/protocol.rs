//! Fixture: an error taxonomy with an unmapped and an untested variant.

pub enum ErrorKind {
    BadRequest,
    Unmapped,
    Untested,
}

impl ErrorKind {
    pub fn status(self) -> u16 {
        match self {
            ErrorKind::BadRequest => 400,
            ErrorKind::Untested => 422,
            _ => 500,
        }
    }
}
