//! Fixture: deliberate determinism and panic-freedom violations.
use std::collections::HashMap;

pub fn run() {
    let started = std::time::Instant::now();
    let mut counts: HashMap<String, u64> = HashMap::new();
    counts.insert("gen".to_string(), 1);
    let v = counts.get("gen").unwrap();
    let _ = (started, v);
}

pub fn seeded() {
    let r = thread_rng();
    let _ = r;
}
