//! Fixture: a fault-injection symbol leaking past its feature gate.

#[cfg(feature = "fault-injection")]
pub struct FaultPlan {
    pub kill_after: usize,
}

pub fn run_ungated() {
    let plan = FaultPlan { kill_after: 2 };
    let _ = plan.kill_after;
}

pub fn also_bad() {
    // audit: allow(nonexistent-rule) — names a rule the auditor does not know
    let x = 1;
    // audit: allow(determinism)
    let y = x;
    let _ = y;
}
