//! Fixture: clean core code — allowlisted exception, test-only unwrap,
//! deterministic containers.

use std::collections::BTreeMap;

pub fn fold(values: &[(String, u64)]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for (k, v) in values {
        *out.entry(k.clone()).or_insert(0) += v;
    }
    out
}

pub fn budgeted() {
    // audit: allow(determinism) — opt-in stop clock; bounds runtime only
    let _ = std::time::Instant::now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
