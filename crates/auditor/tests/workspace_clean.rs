//! The gate's own gate: the live workspace must audit clean. If this test
//! fails, either fix the flagged code or allowlist it inline with a written
//! justification — do not touch this test.

use evoforecast_auditor::run_full_audit;
use std::path::PathBuf;

#[test]
fn live_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves");
    let report = run_full_audit(&root).expect("workspace loads");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the workspace layout move?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.clean,
        "the workspace must satisfy its own invariants:\n{}",
        rendered.join("\n")
    );
}
