//! Error type for the neural baselines.

use std::fmt;

/// Errors produced when configuring or training a network.
#[derive(Debug, Clone, PartialEq)]
pub enum NeuralError {
    /// Invalid hyperparameter (zero layers, negative learning rate, ...).
    InvalidConfig(String),
    /// Training data shapes don't line up.
    ShapeMismatch {
        /// What was being checked.
        what: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// Training diverged (non-finite loss).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
    /// The operation requires a trained / non-empty model.
    Untrained,
}

impl fmt::Display for NeuralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuralError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NeuralError::ShapeMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch in {what}: expected {expected}, got {actual}"
            ),
            NeuralError::Diverged { epoch } => {
                write!(f, "training diverged (non-finite loss) at epoch {epoch}")
            }
            NeuralError::Untrained => write!(f, "model has no trained parameters"),
        }
    }
}

impl std::error::Error for NeuralError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NeuralError::InvalidConfig("lr".into())
            .to_string()
            .contains("lr"));
        let s = NeuralError::ShapeMismatch {
            what: "targets",
            expected: 10,
            actual: 3,
        }
        .to_string();
        assert!(s.contains("targets") && s.contains("10") && s.contains('3'));
        assert!(NeuralError::Diverged { epoch: 4 }.to_string().contains('4'));
        assert!(NeuralError::Untrained.to_string().contains("no trained"));
    }
}
