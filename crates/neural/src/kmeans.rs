//! Lloyd's k-means clustering.
//!
//! Center selection for the RBF baseline: random center sampling (the quick
//! default) wastes units on dense regions; k-means places them where the
//! data's structure is. Deterministic given a seed (k-means++-style seeding
//! from a seeded RNG, then plain Lloyd iterations to a movement tolerance).

use crate::error::NeuralError;
use evoforecast_linalg::{vector, Matrix};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Cluster centers, one row per center.
    pub centers: Vec<Vec<f64>>,
    /// Per-point cluster assignment.
    pub assignments: Vec<usize>,
    /// Lloyd iterations performed.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

/// Run k-means on the rows of `data`.
///
/// `k` is capped at the number of points. Seeding is k-means++ (each new
/// center drawn proportionally to squared distance from the chosen set),
/// then Lloyd iterations until centers move less than `tol` or `max_iter`.
///
/// # Errors
/// * [`NeuralError::InvalidConfig`] for `k == 0`, `max_iter == 0`, or
///   non-positive `tol`,
/// * [`NeuralError::ShapeMismatch`] for empty data.
pub fn kmeans(
    data: &Matrix,
    k: usize,
    max_iter: usize,
    tol: f64,
    seed: u64,
) -> Result<KMeans, NeuralError> {
    if k == 0 || max_iter == 0 || tol.is_nan() || tol <= 0.0 {
        return Err(NeuralError::InvalidConfig(
            "k >= 1, max_iter >= 1 and tol > 0 required".into(),
        ));
    }
    let n = data.rows();
    let d = data.cols();
    if n == 0 || d == 0 {
        return Err(NeuralError::ShapeMismatch {
            what: "kmeans data",
            expected: 1,
            actual: 0,
        });
    }
    let k = k.min(n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // --- k-means++ seeding -------------------------------------------------
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(data.row(rng.gen_range(0..n)).to_vec());
    let mut dist_sq: Vec<f64> = (0..n)
        .map(|i| vector::dist2_sq(data.row(i), &centers[0]))
        .collect();
    while centers.len() < k {
        let total: f64 = dist_sq.iter().sum();
        let next = if total <= f64::MIN_POSITIVE {
            // All remaining points coincide with chosen centers.
            rng.gen_range(0..n)
        } else {
            let mut draw = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in dist_sq.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.push(data.row(next).to_vec());
        let latest = centers.last().expect("just pushed");
        for i in 0..n {
            let d2 = vector::dist2_sq(data.row(i), latest);
            if d2 < dist_sq[i] {
                dist_sq[i] = d2;
            }
        }
    }

    // --- Lloyd iterations ----------------------------------------------------
    let mut assignments = vec![0usize; n];
    let mut iterations = 0usize;
    for _ in 0..max_iter {
        iterations += 1;
        // Assign.
        for (i, slot) in assignments.iter_mut().enumerate() {
            let row = data.row(i);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d2 = vector::dist2_sq(row, center);
                if d2 < best_d {
                    best_d = d2;
                    best = c;
                }
            }
            *slot = best;
        }
        // Update.
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            vector::axpy(1.0, data.row(i), &mut sums[a]);
        }
        let mut max_move_sq = 0.0_f64;
        for (c, center) in centers.iter_mut().enumerate() {
            if counts[c] == 0 {
                continue; // empty cluster keeps its center
            }
            let inv = 1.0 / counts[c] as f64;
            let mut move_sq = 0.0;
            for (slot, &s) in center.iter_mut().zip(&sums[c]) {
                let new = s * inv;
                let delta = new - *slot;
                move_sq += delta * delta;
                *slot = new;
            }
            max_move_sq = max_move_sq.max(move_sq);
        }
        if max_move_sq.sqrt() < tol {
            break;
        }
    }

    let inertia = assignments
        .iter()
        .enumerate()
        .map(|(i, &a)| vector::dist2_sq(data.row(i), &centers[a]))
        .sum();

    Ok(KMeans {
        centers,
        assignments,
        iterations,
        inertia,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2-D.
    fn blobs() -> Matrix {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..30 {
            let jitter = (i as f64 * 0.61).sin() * 0.2;
            rows.push(vec![0.0 + jitter, 0.0 - jitter]);
            rows.push(vec![10.0 - jitter, 10.0 + jitter]);
            rows.push(vec![-10.0 + jitter, 10.0 - jitter]);
        }
        let n = rows.len();
        Matrix::from_fn(n, 2, |i, j| rows[i][j])
    }

    #[test]
    fn validation_errors() {
        let data = blobs();
        assert!(kmeans(&data, 0, 10, 1e-6, 1).is_err());
        assert!(kmeans(&data, 3, 0, 1e-6, 1).is_err());
        assert!(kmeans(&data, 3, 10, 0.0, 1).is_err());
        assert!(kmeans(&Matrix::zeros(0, 2), 3, 10, 1e-6, 1).is_err());
    }

    #[test]
    fn finds_three_separated_blobs() {
        let data = blobs();
        let km = kmeans(&data, 3, 100, 1e-9, 7).unwrap();
        assert_eq!(km.centers.len(), 3);
        // Each center lands near one blob centroid.
        let expected = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        for &(ex, ey) in &expected {
            let hit = km
                .centers
                .iter()
                .any(|c| (c[0] - ex).abs() < 1.0 && (c[1] - ey).abs() < 1.0);
            assert!(hit, "no center near ({ex}, {ey}): {:?}", km.centers);
        }
        // Inertia must be tiny relative to blob separation.
        assert!(km.inertia < 50.0, "inertia {}", km.inertia);
    }

    #[test]
    fn assignments_are_nearest_center() {
        let data = blobs();
        let km = kmeans(&data, 3, 100, 1e-9, 3).unwrap();
        for i in 0..data.rows() {
            let assigned = km.assignments[i];
            let d_assigned = vector::dist2_sq(data.row(i), &km.centers[assigned]);
            for c in &km.centers {
                assert!(d_assigned <= vector::dist2_sq(data.row(i), c) + 1e-9);
            }
        }
    }

    #[test]
    fn k_capped_at_points() {
        let data = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let km = kmeans(&data, 10, 50, 1e-9, 1).unwrap();
        assert_eq!(km.centers.len(), 2);
    }

    #[test]
    fn identical_points_dont_panic() {
        let data = Matrix::from_fn(20, 2, |_, _| 3.0);
        let km = kmeans(&data, 4, 50, 1e-9, 5).unwrap();
        assert!(km.inertia < 1e-12);
        assert!(km.assignments.iter().all(|&a| a < km.centers.len()));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let a = kmeans(&data, 3, 100, 1e-9, 11).unwrap();
        let b = kmeans(&data, 3, 100, 1e-9, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let data = blobs();
        let k2 = kmeans(&data, 2, 200, 1e-9, 13).unwrap();
        let k6 = kmeans(&data, 6, 200, 1e-9, 13).unwrap();
        assert!(k6.inertia <= k2.inertia + 1e-9);
    }
}
