//! Minimal Resource-Allocating Network (Yingwei, Sundararajan &
//! Saratchandran, 1997).
//!
//! The Table 2 comparator for horizon 50. MRAN extends RAN with:
//!
//! * a **third novelty criterion** — the RMS error over a sliding window of
//!   recent observations must also exceed a threshold, which suppresses
//!   allocation on isolated noisy samples, and
//! * **pruning** — a unit whose normalized output contribution stays below a
//!   threshold for `prune_window` consecutive observations is removed,
//!   keeping the network *minimal*.

use crate::error::NeuralError;
use crate::ran::{Ran, RanConfig};
use crate::Forecaster;
use evoforecast_linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// MRAN hyperparameters: the RAN base plus the windowed criteria.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MranConfig {
    /// Base RAN parameters.
    pub ran: RanConfig,
    /// Sliding-window length for the RMS-error novelty criterion.
    pub error_window: usize,
    /// RMS threshold `e'_min`: allocate only when the windowed RMS error
    /// exceeds it.
    pub rms_threshold: f64,
    /// Normalized-contribution threshold below which a unit is a pruning
    /// candidate.
    pub prune_threshold: f64,
    /// Consecutive low-contribution observations before a unit is pruned.
    pub prune_window: usize,
}

impl Default for MranConfig {
    fn default() -> Self {
        MranConfig {
            ran: RanConfig::default(),
            error_window: 25,
            rms_threshold: 0.015,
            prune_threshold: 0.01,
            prune_window: 50,
        }
    }
}

/// A Minimal Resource-Allocating Network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mran {
    config: MranConfig,
    ran: Ran,
    recent_sq_errors: VecDeque<f64>,
    /// Per-unit count of consecutive low-contribution observations.
    low_contribution: Vec<usize>,
    /// Units pruned so far (diagnostic).
    pruned: usize,
}

impl Mran {
    /// Create an empty network.
    ///
    /// # Errors
    /// [`NeuralError::InvalidConfig`] on bad hyperparameters.
    pub fn new(inputs: usize, config: MranConfig) -> Result<Mran, NeuralError> {
        if config.error_window == 0 || config.prune_window == 0 {
            return Err(NeuralError::InvalidConfig(
                "error_window and prune_window must be >= 1".into(),
            ));
        }
        if !(config.rms_threshold >= 0.0 && config.prune_threshold >= 0.0) {
            return Err(NeuralError::InvalidConfig(
                "thresholds must be non-negative".into(),
            ));
        }
        let ran = Ran::new(inputs, config.ran)?;
        Ok(Mran {
            config,
            ran,
            recent_sq_errors: VecDeque::with_capacity(config.error_window),
            low_contribution: Vec::new(),
            pruned: 0,
        })
    }

    /// Number of live units.
    pub fn len(&self) -> usize {
        self.ran.len()
    }

    /// True before any unit is allocated.
    pub fn is_empty(&self) -> bool {
        self.ran.is_empty()
    }

    /// Units pruned so far.
    pub fn pruned_count(&self) -> usize {
        self.pruned
    }

    /// Predict one window.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.ran.predict(x)
    }

    /// Windowed RMS of recent prediction errors (`None` until the window has
    /// at least one entry).
    pub fn windowed_rms(&self) -> Option<f64> {
        if self.recent_sq_errors.is_empty() {
            return None;
        }
        Some(
            (self.recent_sq_errors.iter().sum::<f64>() / self.recent_sq_errors.len() as f64).sqrt(),
        )
    }

    /// Consume one observation; returns the prior prediction error.
    pub fn observe(&mut self, x: &[f64], y: f64) -> f64 {
        // Maintain the windowed RMS *before* deciding, as the third novelty
        // criterion: a burst of errors (not one outlier) licenses allocation.
        let pre_error = y - self.ran.predict(x);
        self.recent_sq_errors.push_back(pre_error * pre_error);
        if self.recent_sq_errors.len() > self.config.error_window {
            self.recent_sq_errors.pop_front();
        }
        let rms_ok = self
            .windowed_rms()
            .map(|r| r > self.config.rms_threshold)
            .unwrap_or(false);

        let before_units = self.ran.len();
        let error = if rms_ok {
            // Delegate: RAN applies its own two criteria on top.
            self.ran.observe(x, y)
        } else {
            // Suppress allocation by observing through the gradient branch
            // only: temporarily forbid allocation via the unit cap.
            self.observe_without_allocation(x, y)
        };
        if self.ran.len() > before_units {
            self.low_contribution.push(0);
        }

        self.update_pruning(x);
        error
    }

    /// Gradient-only update path (allocation suppressed).
    fn observe_without_allocation(&mut self, x: &[f64], y: f64) -> f64 {
        // Reuse RAN's LMS branch by constructing the same update inline: we
        // cannot call `ran.observe` (it might allocate), so replicate the
        // adaptation step through the public unit accessors.
        let prediction = self.ran.predict(x);
        let error = y - prediction;
        let alpha = self.config.ran.learning_rate;
        for u in self.ran.units_mut().iter_mut() {
            let phi = u.response(x);
            let coef = 2.0 * alpha * error * u.weight * phi / (u.width * u.width);
            for (c, &xi) in u.center.iter_mut().zip(x.iter()) {
                *c += coef * (xi - *c);
            }
            u.weight += alpha * error * phi;
        }
        error
    }

    /// Track per-unit normalized contributions and prune persistent
    /// low-contributors.
    fn update_pruning(&mut self, x: &[f64]) {
        let units = self.ran.units();
        if units.is_empty() {
            return;
        }
        debug_assert_eq!(self.low_contribution.len(), units.len());
        let contributions: Vec<f64> = units
            .iter()
            .map(|u| (u.weight * u.response(x)).abs())
            .collect();
        let max_c = contributions.iter().fold(0.0_f64, |m, &c| m.max(c));
        if max_c <= 0.0 {
            return;
        }
        for (count, &c) in self.low_contribution.iter_mut().zip(&contributions) {
            if c / max_c < self.config.prune_threshold {
                *count += 1;
            } else {
                *count = 0;
            }
        }
        // Prune back-to-front so indices stay valid.
        let threshold = self.config.prune_window;
        for i in (0..self.low_contribution.len()).rev() {
            if self.low_contribution[i] >= threshold {
                self.ran.units_mut().remove(i);
                self.low_contribution.remove(i);
                self.pruned += 1;
            }
        }
    }

    /// Sequential training in time order; returns per-observation |error|.
    ///
    /// # Errors
    /// [`NeuralError::ShapeMismatch`] / [`NeuralError::Diverged`] as in RAN.
    pub fn train(&mut self, xs: &Matrix, ys: &[f64]) -> Result<Vec<f64>, NeuralError> {
        if xs.rows() != ys.len() {
            return Err(NeuralError::ShapeMismatch {
                what: "targets",
                expected: xs.rows(),
                actual: ys.len(),
            });
        }
        let mut errors = Vec::with_capacity(xs.rows());
        for i in 0..xs.rows() {
            let e = self.observe(xs.row(i), ys[i]);
            if !e.is_finite() {
                return Err(NeuralError::Diverged { epoch: i });
            }
            errors.push(e.abs());
        }
        Ok(errors)
    }
}

impl Forecaster for Mran {
    fn forecast(&self, window: &[f64]) -> f64 {
        self.predict(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_dataset(n: usize, d: usize) -> (Matrix, Vec<f64>) {
        let vals: Vec<f64> = (0..n + d)
            .map(|i| 0.5 + 0.4 * (i as f64 * std::f64::consts::TAU / 30.0).sin())
            .collect();
        let xs = Matrix::from_fn(n, d, |i, j| vals[i + j]);
        let ys = (0..n).map(|i| vals[i + d]).collect();
        (xs, ys)
    }

    #[test]
    fn config_validation() {
        let bad = MranConfig {
            error_window: 0,
            ..Default::default()
        };
        assert!(Mran::new(3, bad).is_err());
        let bad = MranConfig {
            prune_window: 0,
            ..Default::default()
        };
        assert!(Mran::new(3, bad).is_err());
        let bad = MranConfig {
            rms_threshold: -1.0,
            ..Default::default()
        };
        assert!(Mran::new(3, bad).is_err());
    }

    #[test]
    fn learns_and_reduces_error() {
        let (xs, ys) = wave_dataset(600, 4);
        let mut m = Mran::new(4, MranConfig::default()).unwrap();
        let errors = m.train(&xs, &ys).unwrap();
        let early: f64 = errors[..50].iter().sum::<f64>() / 50.0;
        let late: f64 = errors[errors.len() - 50..].iter().sum::<f64>() / 50.0;
        assert!(late < early * 0.6, "late {late} vs early {early}");
        assert!(!m.is_empty());
    }

    #[test]
    fn stays_smaller_than_plain_ran() {
        // The "minimal" claim: on the same data MRAN should end with no more
        // units than RAN (windowed criterion suppresses spurious allocation,
        // pruning removes dead units).
        let (xs, ys) = wave_dataset(800, 4);
        let mut ran = Ran::new(4, RanConfig::default()).unwrap();
        ran.train(&xs, &ys).unwrap();
        let mut mran = Mran::new(4, MranConfig::default()).unwrap();
        mran.train(&xs, &ys).unwrap();
        assert!(
            mran.len() <= ran.len(),
            "MRAN {} units vs RAN {} units",
            mran.len(),
            ran.len()
        );
    }

    #[test]
    fn pruning_removes_dead_units() {
        // Aggressive pruning settings on a signal that drifts: some early
        // units should die.
        let n = 900;
        let vals: Vec<f64> = (0..n + 3)
            .map(|i| {
                let t = i as f64;
                if i < 300 {
                    (t * 0.3).sin()
                } else {
                    3.0 + (t * 0.21).cos() // regime change: old units useless
                }
            })
            .collect();
        let xs = Matrix::from_fn(n, 3, |i, j| vals[i + j]);
        let ys: Vec<f64> = (0..n).map(|i| vals[i + 3]).collect();
        let cfg = MranConfig {
            prune_threshold: 0.05,
            prune_window: 40,
            ..Default::default()
        };
        let mut m = Mran::new(3, cfg).unwrap();
        m.train(&xs, &ys).unwrap();
        assert!(m.pruned_count() > 0, "regime change should prune old units");
    }

    #[test]
    fn windowed_rms_tracks_recent_errors() {
        let mut m = Mran::new(2, MranConfig::default()).unwrap();
        assert_eq!(m.windowed_rms(), None);
        m.observe(&[0.0, 0.0], 1.0);
        let r = m.windowed_rms().unwrap();
        assert!(r > 0.0);
    }

    #[test]
    fn shape_checks() {
        let mut m = Mran::new(3, MranConfig::default()).unwrap();
        assert!(m.train(&Matrix::zeros(5, 3), &[0.0; 4]).is_err());
    }

    #[test]
    fn deterministic() {
        let (xs, ys) = wave_dataset(300, 3);
        let mut a = Mran::new(3, MranConfig::default()).unwrap();
        let mut b = Mran::new(3, MranConfig::default()).unwrap();
        a.train(&xs, &ys).unwrap();
        b.train(&xs, &ys).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        // JSON can lose an ULP per float, so compare behaviour, not bits.
        let (xs, ys) = wave_dataset(200, 3);
        let mut m = Mran::new(3, MranConfig::default()).unwrap();
        m.train(&xs, &ys).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Mran = serde_json::from_str(&json).unwrap();
        for probe in [[0.1, 0.5, 0.9], [0.4, 0.4, 0.4]] {
            assert!((m.predict(&probe) - back.predict(&probe)).abs() < 1e-9);
        }
        assert_eq!(m.len(), back.len());
    }
}
