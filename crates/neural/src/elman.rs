//! Elman simple recurrent network.
//!
//! The recurrent comparator of Table 3 (Galván & Isasi 2001 used multi-step
//! recurrent models). A classic Elman net: a sigmoid hidden layer whose
//! inputs are the current window *and* the previous hidden state (context
//! units), with a linear output. Trained by truncated backpropagation
//! (gradient stops at the copied context — the standard Elman recipe).

use crate::activation::Activation;
use crate::error::NeuralError;
use crate::Forecaster;
use evoforecast_linalg::Matrix;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Elman network hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElmanConfig {
    /// Hidden/context width.
    pub hidden: usize,
    /// Hidden activation.
    pub activation: Activation,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Training epochs (sequential passes in time order).
    pub epochs: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for ElmanConfig {
    fn default() -> Self {
        ElmanConfig {
            hidden: 12,
            activation: Activation::Sigmoid,
            learning_rate: 0.05,
            epochs: 100,
            seed: 0xE1_1A,
        }
    }
}

/// A (possibly trained) Elman recurrent network with scalar output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Elman {
    config: ElmanConfig,
    inputs: usize,
    /// Input→hidden weights: `hidden x inputs`.
    w_in: Matrix,
    /// Context→hidden weights: `hidden x hidden`.
    w_ctx: Matrix,
    /// Hidden biases.
    b_h: Vec<f64>,
    /// Hidden→output weights.
    w_out: Vec<f64>,
    /// Output bias.
    b_out: f64,
    /// Context state carried across `step` calls.
    context: Vec<f64>,
}

impl Elman {
    /// Initialize with small random weights and zero context.
    ///
    /// # Errors
    /// [`NeuralError::InvalidConfig`] on zero sizes or bad rates.
    pub fn new(inputs: usize, config: ElmanConfig) -> Result<Elman, NeuralError> {
        if inputs == 0 || config.hidden == 0 {
            return Err(NeuralError::InvalidConfig(
                "inputs and hidden width must be >= 1".into(),
            ));
        }
        if !(config.learning_rate > 0.0 && config.learning_rate.is_finite()) {
            return Err(NeuralError::InvalidConfig(format!(
                "learning_rate {} must be positive",
                config.learning_rate
            )));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let scale_in = (1.0 / inputs as f64).sqrt();
        let scale_h = (1.0 / config.hidden as f64).sqrt();
        let rnd = |s: f64, rng: &mut ChaCha8Rng| (rng.gen::<f64>() * 2.0 - 1.0) * s;
        let w_in = {
            let mut m = Matrix::zeros(config.hidden, inputs);
            for i in 0..config.hidden {
                for j in 0..inputs {
                    m[(i, j)] = rnd(scale_in, &mut rng);
                }
            }
            m
        };
        let w_ctx = {
            let mut m = Matrix::zeros(config.hidden, config.hidden);
            for i in 0..config.hidden {
                for j in 0..config.hidden {
                    m[(i, j)] = rnd(scale_h, &mut rng);
                }
            }
            m
        };
        let b_h = (0..config.hidden).map(|_| rnd(0.1, &mut rng)).collect();
        let w_out = (0..config.hidden).map(|_| rnd(scale_h, &mut rng)).collect();
        Ok(Elman {
            config,
            inputs,
            w_in,
            w_ctx,
            b_h,
            w_out,
            b_out: 0.0,
            context: vec![0.0; config.hidden],
        })
    }

    /// Number of input taps.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Reset the context units to zero (start of a new sequence).
    pub fn reset(&mut self) {
        self.context.iter_mut().for_each(|c| *c = 0.0);
    }

    /// One forward step from an explicit context; returns `(hidden, output)`.
    fn forward_from(&self, x: &[f64], context: &[f64]) -> (Vec<f64>, f64) {
        let h = self.config.hidden;
        let mut hidden = Vec::with_capacity(h);
        for k in 0..h {
            let z = evoforecast_linalg::vector::dot_unchecked(self.w_in.row(k), x)
                + evoforecast_linalg::vector::dot_unchecked(self.w_ctx.row(k), context)
                + self.b_h[k];
            hidden.push(self.config.activation.apply(z));
        }
        let out = evoforecast_linalg::vector::dot_unchecked(&self.w_out, &hidden) + self.b_out;
        (hidden, out)
    }

    /// Stateful prediction step: consumes the stored context and updates it.
    pub fn step(&mut self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.inputs);
        let (hidden, out) = self.forward_from(x, &self.context.clone());
        self.context = hidden;
        out
    }

    /// Train on windows in time order (the recurrence needs temporal
    /// adjacency). Returns per-epoch mean squared error.
    ///
    /// # Errors
    /// Shape and divergence errors as in [`crate::mlp::Mlp::train`].
    pub fn train(&mut self, xs: &Matrix, ys: &[f64]) -> Result<Vec<f64>, NeuralError> {
        if xs.cols() != self.inputs {
            return Err(NeuralError::ShapeMismatch {
                what: "input width",
                expected: self.inputs,
                actual: xs.cols(),
            });
        }
        if xs.rows() != ys.len() {
            return Err(NeuralError::ShapeMismatch {
                what: "targets",
                expected: xs.rows(),
                actual: ys.len(),
            });
        }
        if xs.rows() == 0 {
            return Err(NeuralError::ShapeMismatch {
                what: "observations",
                expected: 1,
                actual: 0,
            });
        }

        let n = xs.rows();
        let h = self.config.hidden;
        let lr = self.config.learning_rate;
        let mut losses = Vec::with_capacity(self.config.epochs);

        for epoch in 0..self.config.epochs {
            self.reset();
            let mut sum_sq = 0.0;
            for i in 0..n {
                let x = xs.row(i);
                let context = self.context.clone();
                let (hidden, out) = self.forward_from(x, &context);
                let err = out - ys[i];
                sum_sq += err * err;

                // Output layer.
                for k in 0..h {
                    self.w_out[k] -= lr * err * hidden[k];
                }
                self.b_out -= lr * err;

                // Hidden layer (gradient truncated at the context copy).
                for k in 0..h {
                    let delta = err
                        * self.w_out[k]
                        * self.config.activation.derivative_from_output(hidden[k]);
                    let row_in = self.w_in.row_mut(k);
                    for (j, &xj) in x.iter().enumerate() {
                        row_in[j] -= lr * delta * xj;
                    }
                    let row_ctx = self.w_ctx.row_mut(k);
                    for (j, &cj) in context.iter().enumerate() {
                        row_ctx[j] -= lr * delta * cj;
                    }
                    self.b_h[k] -= lr * delta;
                }

                self.context = hidden;
            }
            let mse = sum_sq / n as f64;
            if !mse.is_finite() {
                return Err(NeuralError::Diverged { epoch });
            }
            losses.push(mse);
        }
        // Leave the context primed at the end of training so forecasting
        // continues the sequence.
        Ok(losses)
    }
}

impl Forecaster for Elman {
    /// Stateless forecast used by the uniform bench interface: runs from the
    /// trained (end-of-training) context without mutating it.
    fn forecast(&self, window: &[f64]) -> f64 {
        self.forward_from(window, &self.context).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Windows of a sine, in time order.
    fn sine_dataset(n: usize, d: usize) -> (Matrix, Vec<f64>) {
        let vals: Vec<f64> = (0..n + d)
            .map(|i| (i as f64 * std::f64::consts::TAU / 20.0).sin())
            .collect();
        let xs = Matrix::from_fn(n, d, |i, j| vals[i + j]);
        let ys = (0..n).map(|i| vals[i + d]).collect();
        (xs, ys)
    }

    #[test]
    fn config_validation() {
        assert!(Elman::new(0, ElmanConfig::default()).is_err());
        let c = ElmanConfig {
            hidden: 0,
            ..Default::default()
        };
        assert!(Elman::new(3, c).is_err());
        let c = ElmanConfig {
            learning_rate: 0.0,
            ..Default::default()
        };
        assert!(Elman::new(3, c).is_err());
    }

    #[test]
    fn shape_checks() {
        let mut e = Elman::new(3, ElmanConfig::default()).unwrap();
        assert!(e.train(&Matrix::zeros(5, 2), &[0.0; 5]).is_err());
        assert!(e.train(&Matrix::zeros(5, 3), &[0.0; 4]).is_err());
        assert!(e.train(&Matrix::zeros(0, 3), &[]).is_err());
    }

    #[test]
    fn learns_sine_continuation() {
        let (xs, ys) = sine_dataset(300, 4);
        let mut e = Elman::new(
            4,
            ElmanConfig {
                hidden: 10,
                epochs: 150,
                learning_rate: 0.08,
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let losses = e.train(&xs, &ys).unwrap();
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first * 0.5, "loss should halve: {first} -> {last}");
        assert!(last < 0.05, "final loss {last}");
    }

    #[test]
    fn context_affects_output() {
        let (xs, ys) = sine_dataset(200, 4);
        let mut e = Elman::new(
            4,
            ElmanConfig {
                seed: 4,
                ..Default::default()
            },
        )
        .unwrap();
        e.train(&xs, &ys).unwrap();
        let w = [0.1, 0.2, 0.3, 0.4];
        let with_context = e.forecast(&w);
        let mut reset = e.clone();
        reset.reset();
        let without_context = reset.forecast(&w);
        assert_ne!(
            with_context, without_context,
            "context units must influence the output"
        );
    }

    #[test]
    fn step_is_stateful() {
        let mut e = Elman::new(
            2,
            ElmanConfig {
                seed: 6,
                ..Default::default()
            },
        )
        .unwrap();
        let w = [0.5, -0.5];
        let o1 = e.step(&w);
        let o2 = e.step(&w);
        // Same input, evolved context: outputs differ (context was zero
        // before the first step, non-zero before the second).
        assert_ne!(o1, o2);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = sine_dataset(100, 3);
        let run = |seed: u64| {
            let mut e = Elman::new(
                3,
                ElmanConfig {
                    epochs: 30,
                    seed,
                    ..Default::default()
                },
            )
            .unwrap();
            e.train(&xs, &ys).unwrap();
            e.forecast(&[0.1, 0.2, 0.3])
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        // JSON can lose an ULP per float, so compare behaviour, not bits.
        let e = Elman::new(3, ElmanConfig::default()).unwrap();
        let json = serde_json::to_string(&e).unwrap();
        let back: Elman = serde_json::from_str(&json).unwrap();
        for probe in [[0.1, 0.2, 0.3], [-1.0, 0.5, 2.0]] {
            assert!((e.forecast(&probe) - back.forecast(&probe)).abs() < 1e-9);
        }
    }
}
