//! Resource-Allocating Network (Platt, 1991).
//!
//! The Table 2 comparator for horizon 85. RAN learns *sequentially*: for
//! each observation it either allocates a new Gaussian unit (when the
//! prediction error is large **and** the input is far from every existing
//! center — the two novelty criteria) or adapts the existing parameters by
//! LMS gradient descent. The allocation distance threshold `δ(t)` shrinks
//! geometrically from `delta_max` to `delta_min`, so early units are coarse
//! and later ones refine.

use crate::error::NeuralError;
use crate::rbf::RbfUnit;
use crate::Forecaster;
use evoforecast_linalg::{vector, Matrix};
use serde::{Deserialize, Serialize};

/// RAN hyperparameters (names follow Platt's paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RanConfig {
    /// Error novelty threshold ε: allocate only when `|error| > epsilon`.
    pub epsilon: f64,
    /// Initial (largest) distance threshold.
    pub delta_max: f64,
    /// Final (smallest) distance threshold.
    pub delta_min: f64,
    /// Geometric decay factor of δ per observation (`0 < decay < 1`).
    pub decay: f64,
    /// Width overlap factor κ for newly allocated units.
    pub kappa: f64,
    /// LMS learning rate α for the gradient branch.
    pub learning_rate: f64,
    /// Hard cap on the number of units (resource limit).
    pub max_units: usize,
}

impl Default for RanConfig {
    fn default() -> Self {
        RanConfig {
            epsilon: 0.02,
            delta_max: 0.7,
            delta_min: 0.07,
            decay: 0.999,
            kappa: 0.87,
            learning_rate: 0.05,
            max_units: 200,
        }
    }
}

impl RanConfig {
    fn validate(&self) -> Result<(), NeuralError> {
        if !(self.epsilon >= 0.0 && self.epsilon.is_finite()) {
            return Err(NeuralError::InvalidConfig("epsilon must be >= 0".into()));
        }
        if !(self.delta_min > 0.0 && self.delta_max >= self.delta_min) {
            return Err(NeuralError::InvalidConfig(
                "need 0 < delta_min <= delta_max".into(),
            ));
        }
        if !(self.decay > 0.0 && self.decay < 1.0) {
            return Err(NeuralError::InvalidConfig("decay must be in (0, 1)".into()));
        }
        if !(self.kappa > 0.0 && self.learning_rate > 0.0) {
            return Err(NeuralError::InvalidConfig(
                "kappa and learning_rate must be positive".into(),
            ));
        }
        if self.max_units == 0 {
            return Err(NeuralError::InvalidConfig("max_units must be >= 1".into()));
        }
        Ok(())
    }
}

/// A Resource-Allocating Network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ran {
    config: RanConfig,
    inputs: usize,
    units: Vec<RbfUnit>,
    bias: f64,
    /// Current distance threshold δ(t).
    delta: f64,
    /// Observations consumed (drives the δ decay).
    seen: usize,
}

impl Ran {
    /// Create an empty network.
    ///
    /// # Errors
    /// [`NeuralError::InvalidConfig`] on bad hyperparameters.
    pub fn new(inputs: usize, config: RanConfig) -> Result<Ran, NeuralError> {
        if inputs == 0 {
            return Err(NeuralError::InvalidConfig("inputs must be >= 1".into()));
        }
        config.validate()?;
        Ok(Ran {
            config,
            inputs,
            units: Vec::new(),
            bias: 0.0,
            delta: config.delta_max,
            seen: 0,
        })
    }

    /// Number of allocated units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True before any unit is allocated.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The units (for diagnostics / MRAN pruning stats).
    pub fn units(&self) -> &[RbfUnit] {
        &self.units
    }

    /// Mutable unit access for the MRAN wrapper.
    pub(crate) fn units_mut(&mut self) -> &mut Vec<RbfUnit> {
        &mut self.units
    }

    /// Predict one window.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.inputs);
        self.bias
            + self
                .units
                .iter()
                .map(|u| u.weight * u.response(x))
                .sum::<f64>()
    }

    /// Consume one observation; returns the *prior* prediction error.
    pub fn observe(&mut self, x: &[f64], y: f64) -> f64 {
        debug_assert_eq!(x.len(), self.inputs);
        // First observation initializes the bias to the first target, as in
        // Platt's formulation (f_0 = y_0).
        if self.seen == 0 && self.units.is_empty() {
            self.bias = y;
        }
        let prediction = self.predict(x);
        let error = y - prediction;

        // Distance to the nearest center.
        let nearest = self
            .units
            .iter()
            .map(|u| vector::dist2_sq(x, &u.center).sqrt())
            .fold(f64::INFINITY, f64::min);

        let novel_error = error.abs() > self.config.epsilon;
        let novel_input = nearest > self.delta;
        if novel_error && novel_input && self.units.len() < self.config.max_units {
            // Allocate: center at x, weight covers the error, width couples
            // to the distance of the nearest unit (or δ for the first).
            let width_basis = if nearest.is_finite() {
                nearest
            } else {
                self.delta
            };
            self.units.push(RbfUnit {
                center: x.to_vec(),
                width: (self.config.kappa * width_basis).max(1e-3),
                weight: error,
            });
        } else {
            // LMS adaptation of weights, bias and centers.
            let alpha = self.config.learning_rate;
            for u in &mut self.units {
                let phi = u.response(x);
                let w_grad = alpha * error * phi;
                // Center update: pull toward x proportionally to influence.
                let coef = 2.0 * alpha * error * u.weight * phi / (u.width * u.width);
                for (c, &xi) in u.center.iter_mut().zip(x.iter()) {
                    *c += coef * (xi - *c);
                }
                u.weight += w_grad;
            }
            self.bias += alpha * error;
        }

        self.seen += 1;
        self.delta = (self.delta * self.config.decay).max(self.config.delta_min);
        error
    }

    /// Sequential training over windows in time order; returns the running
    /// absolute error per observation.
    ///
    /// # Errors
    /// [`NeuralError::ShapeMismatch`] on inconsistent data,
    /// [`NeuralError::Diverged`] when predictions go non-finite.
    pub fn train(&mut self, xs: &Matrix, ys: &[f64]) -> Result<Vec<f64>, NeuralError> {
        if xs.cols() != self.inputs {
            return Err(NeuralError::ShapeMismatch {
                what: "input width",
                expected: self.inputs,
                actual: xs.cols(),
            });
        }
        if xs.rows() != ys.len() {
            return Err(NeuralError::ShapeMismatch {
                what: "targets",
                expected: xs.rows(),
                actual: ys.len(),
            });
        }
        let mut errors = Vec::with_capacity(xs.rows());
        for i in 0..xs.rows() {
            let e = self.observe(xs.row(i), ys[i]);
            if !e.is_finite() {
                return Err(NeuralError::Diverged { epoch: i });
            }
            errors.push(e.abs());
        }
        Ok(errors)
    }

    /// Current distance threshold δ(t) (for tests and diagnostics).
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

impl Forecaster for Ran {
    fn forecast(&self, window: &[f64]) -> f64 {
        self.predict(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_dataset(n: usize, d: usize) -> (Matrix, Vec<f64>) {
        let vals: Vec<f64> = (0..n + d)
            .map(|i| 0.5 + 0.4 * (i as f64 * std::f64::consts::TAU / 30.0).sin())
            .collect();
        let xs = Matrix::from_fn(n, d, |i, j| vals[i + j]);
        let ys = (0..n).map(|i| vals[i + d]).collect();
        (xs, ys)
    }

    #[test]
    fn config_validation() {
        assert!(Ran::new(0, RanConfig::default()).is_err());
        let bad = RanConfig {
            delta_min: 0.0,
            ..Default::default()
        };
        assert!(Ran::new(3, bad).is_err());
        let bad = RanConfig {
            decay: 1.0,
            ..Default::default()
        };
        assert!(Ran::new(3, bad).is_err());
        let bad = RanConfig {
            max_units: 0,
            ..Default::default()
        };
        assert!(Ran::new(3, bad).is_err());
        let bad = RanConfig {
            epsilon: f64::NAN,
            ..Default::default()
        };
        assert!(Ran::new(3, bad).is_err());
    }

    #[test]
    fn allocates_units_on_novel_data() {
        let (xs, ys) = wave_dataset(400, 4);
        let mut ran = Ran::new(4, RanConfig::default()).unwrap();
        assert!(ran.is_empty());
        ran.train(&xs, &ys).unwrap();
        assert!(!ran.is_empty(), "RAN must allocate units");
        assert!(ran.len() <= 200);
    }

    #[test]
    fn sequential_learning_reduces_error() {
        let (xs, ys) = wave_dataset(600, 4);
        let mut ran = Ran::new(4, RanConfig::default()).unwrap();
        let errors = ran.train(&xs, &ys).unwrap();
        let early: f64 = errors[..50].iter().sum::<f64>() / 50.0;
        let late: f64 = errors[errors.len() - 50..].iter().sum::<f64>() / 50.0;
        assert!(
            late < early * 0.5,
            "late error {late} should undercut early error {early}"
        );
    }

    #[test]
    fn delta_decays_toward_minimum() {
        let (xs, ys) = wave_dataset(2000, 3);
        let cfg = RanConfig {
            decay: 0.99,
            ..Default::default()
        };
        let mut ran = Ran::new(3, cfg).unwrap();
        assert_eq!(ran.delta(), cfg.delta_max);
        ran.train(&xs, &ys).unwrap();
        assert!((ran.delta() - cfg.delta_min).abs() < 1e-9);
    }

    #[test]
    fn respects_unit_cap() {
        let (xs, ys) = wave_dataset(500, 3);
        let cfg = RanConfig {
            max_units: 5,
            epsilon: 0.0001,
            delta_min: 0.0001,
            delta_max: 0.001, // everything is "far" initially
            ..Default::default()
        };
        let mut ran = Ran::new(3, cfg).unwrap();
        ran.train(&xs, &ys).unwrap();
        assert!(ran.len() <= 5);
    }

    #[test]
    fn shape_checks() {
        let mut ran = Ran::new(3, RanConfig::default()).unwrap();
        assert!(ran.train(&Matrix::zeros(5, 2), &[0.0; 5]).is_err());
        assert!(ran.train(&Matrix::zeros(5, 3), &[0.0; 4]).is_err());
    }

    #[test]
    fn first_observation_sets_bias() {
        let mut ran = Ran::new(2, RanConfig::default()).unwrap();
        ran.observe(&[0.5, 0.5], 3.0);
        // With no units, prediction equals bias == first target.
        assert!((ran.predict(&[0.9, 0.9]) - 3.0).abs() < 0.5);
    }

    #[test]
    fn deterministic_no_rng_involved() {
        let (xs, ys) = wave_dataset(200, 3);
        let mut a = Ran::new(3, RanConfig::default()).unwrap();
        let mut b = Ran::new(3, RanConfig::default()).unwrap();
        a.train(&xs, &ys).unwrap();
        b.train(&xs, &ys).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let (xs, ys) = wave_dataset(100, 3);
        let mut ran = Ran::new(3, RanConfig::default()).unwrap();
        ran.train(&xs, &ys).unwrap();
        let json = serde_json::to_string(&ran).unwrap();
        let back: Ran = serde_json::from_str(&json).unwrap();
        assert_eq!(ran, back);
    }
}
