//! Activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// Supported hidden-layer activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (used for output layers in regression).
    Linear,
}

impl Activation {
    /// Apply the activation.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the *activated output* `y = f(x)` —
    /// the form backprop wants, since the forward pass already stores `y`.
    #[inline]
    pub fn derivative_from_output(&self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Linear => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sigmoid_shape() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(10.0) > 0.999);
        assert!(s.apply(-10.0) < 0.001);
    }

    #[test]
    fn tanh_shape() {
        let t = Activation::Tanh;
        assert_eq!(t.apply(0.0), 0.0);
        assert!(t.apply(5.0) > 0.999);
        assert!(t.apply(-5.0) < -0.999);
    }

    #[test]
    fn linear_is_identity() {
        let l = Activation::Linear;
        assert_eq!(l.apply(3.25), 3.25);
        assert_eq!(l.derivative_from_output(42.0), 1.0);
    }

    proptest! {
        #[test]
        fn derivatives_match_finite_differences(x in -4.0..4.0f64) {
            let h = 1e-6;
            for act in [Activation::Sigmoid, Activation::Tanh, Activation::Linear] {
                let y = act.apply(x);
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative_from_output(y);
                prop_assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric}, analytic {analytic}"
                );
            }
        }

        #[test]
        fn sigmoid_bounded_monotone(a in -20.0..20.0f64, b in -20.0..20.0f64) {
            let s = Activation::Sigmoid;
            let (ya, yb) = (s.apply(a), s.apply(b));
            prop_assert!((0.0..=1.0).contains(&ya));
            if a < b {
                prop_assert!(ya <= yb);
            }
        }
    }
}
