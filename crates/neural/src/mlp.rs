//! Multilayer perceptron trained by backpropagation.
//!
//! The feedforward comparator of Tables 1 and 3: a single sigmoid hidden
//! layer with a linear output unit, trained by stochastic gradient descent
//! with momentum on the one-step forecasting task `(window → target)`.

use crate::activation::Activation;
use crate::error::NeuralError;
use crate::Forecaster;
use evoforecast_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Hidden activation.
    pub activation: Activation,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Training epochs (full passes, shuffled).
    pub epochs: usize,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 16,
            activation: Activation::Sigmoid,
            learning_rate: 0.05,
            momentum: 0.9,
            epochs: 200,
            seed: 0x31A5,
        }
    }
}

/// A trained (or training) one-hidden-layer MLP with scalar output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    inputs: usize,
    /// Hidden weights: `hidden x inputs`.
    w1: Matrix,
    /// Hidden biases.
    b1: Vec<f64>,
    /// Output weights: `hidden`.
    w2: Vec<f64>,
    /// Output bias.
    b2: f64,
}

impl Mlp {
    /// Initialize with small random weights.
    ///
    /// # Errors
    /// [`NeuralError::InvalidConfig`] on zero sizes or bad rates.
    pub fn new(inputs: usize, config: MlpConfig) -> Result<Mlp, NeuralError> {
        if inputs == 0 || config.hidden == 0 {
            return Err(NeuralError::InvalidConfig(
                "inputs and hidden width must be >= 1".into(),
            ));
        }
        if !(config.learning_rate > 0.0 && config.learning_rate.is_finite()) {
            return Err(NeuralError::InvalidConfig(format!(
                "learning_rate {} must be positive",
                config.learning_rate
            )));
        }
        if !(0.0..1.0).contains(&config.momentum) {
            return Err(NeuralError::InvalidConfig(format!(
                "momentum {} must be in [0, 1)",
                config.momentum
            )));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        // Xavier-ish scaling keeps sigmoid units in their responsive band.
        let scale = (1.0 / inputs as f64).sqrt();
        let w1 = Matrix::from_fn(config.hidden, inputs, |_, _| {
            (rng.gen::<f64>() * 2.0 - 1.0) * scale
        });
        let b1 = (0..config.hidden)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * 0.1)
            .collect();
        let w2 = (0..config.hidden)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        let b2 = 0.0;
        Ok(Mlp {
            config,
            inputs,
            w1,
            b1,
            w2,
            b2,
        })
    }

    /// Number of input taps.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Forward pass returning `(hidden_outputs, output)`.
    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let mut hidden = Vec::with_capacity(self.config.hidden);
        for h in 0..self.config.hidden {
            let z = evoforecast_linalg::vector::dot_unchecked(self.w1.row(h), x) + self.b1[h];
            hidden.push(self.config.activation.apply(z));
        }
        let out = evoforecast_linalg::vector::dot_unchecked(&self.w2, &hidden) + self.b2;
        (hidden, out)
    }

    /// Predict one window.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.inputs);
        self.forward(x).1
    }

    /// Train by SGD with momentum; returns per-epoch mean squared error.
    ///
    /// # Errors
    /// * [`NeuralError::ShapeMismatch`] on inconsistent data,
    /// * [`NeuralError::Diverged`] when the loss goes non-finite.
    pub fn train(&mut self, xs: &Matrix, ys: &[f64]) -> Result<Vec<f64>, NeuralError> {
        if xs.cols() != self.inputs {
            return Err(NeuralError::ShapeMismatch {
                what: "input width",
                expected: self.inputs,
                actual: xs.cols(),
            });
        }
        if xs.rows() != ys.len() {
            return Err(NeuralError::ShapeMismatch {
                what: "targets",
                expected: xs.rows(),
                actual: ys.len(),
            });
        }
        if xs.rows() == 0 {
            return Err(NeuralError::ShapeMismatch {
                what: "observations",
                expected: 1,
                actual: 0,
            });
        }

        let n = xs.rows();
        let h = self.config.hidden;
        let lr = self.config.learning_rate;
        let mu = self.config.momentum;
        // RNG continues from a distinct stream so repeated train() calls see
        // different shuffles but the whole procedure stays seed-deterministic.
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed.wrapping_add(1));

        // Momentum buffers.
        let mut vw1 = Matrix::zeros(h, self.inputs);
        let mut vb1 = vec![0.0; h];
        let mut vw2 = vec![0.0; h];
        let mut vb2 = 0.0;

        let mut order: Vec<usize> = (0..n).collect();
        let mut losses = Vec::with_capacity(self.config.epochs);

        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut sum_sq = 0.0;
            for &i in &order {
                let x = xs.row(i);
                let (hidden, out) = self.forward(x);
                let err = out - ys[i]; // d(MSE/2)/d out
                sum_sq += err * err;

                // Output layer gradients.
                for k in 0..h {
                    let g = err * hidden[k];
                    vw2[k] = mu * vw2[k] - lr * g;
                    self.w2[k] += vw2[k];
                }
                vb2 = mu * vb2 - lr * err;
                self.b2 += vb2;

                // Hidden layer gradients (through the *old* w2 is fine for
                // SGD; we use the updated one — both are standard).
                for k in 0..h {
                    let delta =
                        err * self.w2[k] * self.config.activation.derivative_from_output(hidden[k]);
                    let grad_row = self.w1.row_mut(k);
                    let vrow = vw1.row_mut(k);
                    for (j, &xj) in x.iter().enumerate() {
                        vrow[j] = mu * vrow[j] - lr * delta * xj;
                        grad_row[j] += vrow[j];
                    }
                    vb1[k] = mu * vb1[k] - lr * delta;
                    self.b1[k] += vb1[k];
                }
            }
            let mse = sum_sq / n as f64;
            if !mse.is_finite() {
                return Err(NeuralError::Diverged { epoch });
            }
            losses.push(mse);
        }
        Ok(losses)
    }
}

impl Forecaster for Mlp {
    fn forecast(&self, window: &[f64]) -> f64 {
        self.predict(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like_dataset() -> (Matrix, Vec<f64>) {
        // Smooth nonlinear target: y = sin(3 x0) * cos(2 x1).
        let n = 200;
        let xs = Matrix::from_fn(n, 2, |i, j| {
            let t = i as f64 / n as f64;
            if j == 0 {
                t * 2.0 - 1.0
            } else {
                (t * 7.0).sin()
            }
        });
        let ys = (0..n)
            .map(|i| (3.0 * xs[(i, 0)]).sin() * (2.0 * xs[(i, 1)]).cos())
            .collect();
        (xs, ys)
    }

    #[test]
    fn config_validation() {
        assert!(Mlp::new(0, MlpConfig::default()).is_err());
        let c = MlpConfig {
            hidden: 0,
            ..Default::default()
        };
        assert!(Mlp::new(2, c).is_err());
        let c = MlpConfig {
            learning_rate: -1.0,
            ..Default::default()
        };
        assert!(Mlp::new(2, c).is_err());
        let c = MlpConfig {
            momentum: 1.0,
            ..Default::default()
        };
        assert!(Mlp::new(2, c).is_err());
    }

    #[test]
    fn shape_checks_on_train() {
        let mut m = Mlp::new(3, MlpConfig::default()).unwrap();
        let xs = Matrix::zeros(4, 2);
        assert!(matches!(
            m.train(&xs, &[0.0; 4]),
            Err(NeuralError::ShapeMismatch { .. })
        ));
        let xs = Matrix::zeros(4, 3);
        assert!(matches!(
            m.train(&xs, &[0.0; 3]),
            Err(NeuralError::ShapeMismatch { .. })
        ));
        let xs = Matrix::zeros(0, 3);
        assert!(m.train(&xs, &[]).is_err());
    }

    #[test]
    fn learns_linear_function_quickly() {
        let n = 100;
        let xs = Matrix::from_fn(n, 2, |i, j| ((i * (j + 1)) as f64 * 0.37).sin());
        let ys: Vec<f64> = (0..n)
            .map(|i| 0.8 * xs[(i, 0)] - 0.3 * xs[(i, 1)] + 0.1)
            .collect();
        let mut m = Mlp::new(
            2,
            MlpConfig {
                hidden: 8,
                epochs: 300,
                learning_rate: 0.05,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let losses = m.train(&xs, &ys).unwrap();
        assert!(
            losses.last().unwrap() < &1e-3,
            "final loss {}",
            losses.last().unwrap()
        );
    }

    #[test]
    fn learns_nonlinear_function() {
        let (xs, ys) = xor_like_dataset();
        let mut m = Mlp::new(
            2,
            MlpConfig {
                hidden: 24,
                epochs: 600,
                learning_rate: 0.05,
                momentum: 0.9,
                seed: 5,
                activation: Activation::Tanh,
            },
        )
        .unwrap();
        let losses = m.train(&xs, &ys).unwrap();
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first * 0.5, "loss should drop: {first} -> {last}");
        assert!(last < 0.1, "final loss {last}");
    }

    #[test]
    fn training_loss_trends_down() {
        let (xs, ys) = xor_like_dataset();
        let mut m = Mlp::new(
            2,
            MlpConfig {
                seed: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let losses = m.train(&xs, &ys).unwrap();
        let early: f64 = losses[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = losses[losses.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(late < early, "no learning: early {early}, late {late}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = xor_like_dataset();
        let run = |seed: u64| {
            let mut m = Mlp::new(
                2,
                MlpConfig {
                    epochs: 50,
                    seed,
                    ..Default::default()
                },
            )
            .unwrap();
            m.train(&xs, &ys).unwrap();
            m.predict(&[0.3, -0.4])
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn forecaster_trait_delegates() {
        let m = Mlp::new(2, MlpConfig::default()).unwrap();
        let w = [0.1, 0.2];
        assert_eq!(m.forecast(&w), m.predict(&w));
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        // JSON can lose an ULP per float, so compare behaviour, not bits.
        let m = Mlp::new(3, MlpConfig::default()).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        for probe in [[0.1, 0.2, 0.3], [-1.0, 0.5, 2.0], [0.0, 0.0, 0.0]] {
            assert!((m.predict(&probe) - back.predict(&probe)).abs() < 1e-9);
        }
    }
}
