//! Gaussian radial-basis-function network with fixed centers.
//!
//! The shared substrate of RAN/MRAN and a baseline in its own right: centers
//! are sampled from the training inputs, widths set by the nearest-neighbor
//! heuristic, and the linear readout is solved exactly by least squares (the
//! lazy-RBF comparison of Valls et al. 2004 used networks of this family).

use crate::error::NeuralError;
use crate::Forecaster;
use evoforecast_linalg::regression::{LinearRegression, RegressionOptions};
use evoforecast_linalg::{vector, Matrix};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A Gaussian RBF unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbfUnit {
    /// Center vector (dimension = input width).
    pub center: Vec<f64>,
    /// Width σ of the Gaussian.
    pub width: f64,
    /// Readout weight.
    pub weight: f64,
}

impl RbfUnit {
    /// Gaussian response `exp(-||x - c||² / (2σ²))`.
    #[inline]
    pub fn response(&self, x: &[f64]) -> f64 {
        let d2 = vector::dist2_sq(x, &self.center);
        (-d2 / (2.0 * self.width * self.width)).exp()
    }
}

/// RBF network: Gaussian units plus a linear readout with bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbfNetwork {
    units: Vec<RbfUnit>,
    bias: f64,
    inputs: usize,
}

impl RbfNetwork {
    /// Train with k-means center placement: cluster the inputs into
    /// `centers` groups (k-means++ seeding, Lloyd iterations), use the
    /// centroids as unit centers, then proceed as [`RbfNetwork::train`].
    ///
    /// # Errors
    /// Same as [`RbfNetwork::train`], plus k-means configuration errors.
    pub fn train_kmeans(
        xs: &Matrix,
        ys: &[f64],
        centers: usize,
        seed: u64,
    ) -> Result<RbfNetwork, NeuralError> {
        if xs.rows() != ys.len() {
            return Err(NeuralError::ShapeMismatch {
                what: "targets",
                expected: xs.rows(),
                actual: ys.len(),
            });
        }
        let km = crate::kmeans::kmeans(xs, centers, 100, 1e-8, seed)?;
        Self::from_centers(xs, ys, km.centers)
    }

    /// Train: sample `centers` rows of `xs` as unit centers, set each width
    /// to the distance to its nearest fellow center (times an overlap factor
    /// of 1.5, floored to a small epsilon), then solve the readout by least
    /// squares.
    ///
    /// # Errors
    /// * [`NeuralError::InvalidConfig`] on zero centers,
    /// * [`NeuralError::ShapeMismatch`] on inconsistent data,
    /// * [`NeuralError::Diverged`] if the readout solve fails entirely.
    pub fn train(
        xs: &Matrix,
        ys: &[f64],
        centers: usize,
        seed: u64,
    ) -> Result<RbfNetwork, NeuralError> {
        if centers == 0 {
            return Err(NeuralError::InvalidConfig(
                "need at least one center".into(),
            ));
        }
        if xs.rows() != ys.len() {
            return Err(NeuralError::ShapeMismatch {
                what: "targets",
                expected: xs.rows(),
                actual: ys.len(),
            });
        }
        if xs.rows() == 0 || xs.cols() == 0 {
            return Err(NeuralError::ShapeMismatch {
                what: "observations",
                expected: 1,
                actual: 0,
            });
        }
        let centers = centers.min(xs.rows());

        // Sample distinct training rows as centers.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..xs.rows()).collect();
        idx.shuffle(&mut rng);
        let center_vecs: Vec<Vec<f64>> =
            idx[..centers].iter().map(|&i| xs.row(i).to_vec()).collect();
        Self::from_centers(xs, ys, center_vecs)
    }

    /// Build a network from explicit center vectors: nearest-neighbor
    /// widths, least-squares readout.
    ///
    /// # Errors
    /// * [`NeuralError::InvalidConfig`] on an empty center set,
    /// * [`NeuralError::Diverged`] if the readout solve fails entirely.
    pub fn from_centers(
        xs: &Matrix,
        ys: &[f64],
        center_vecs: Vec<Vec<f64>>,
    ) -> Result<RbfNetwork, NeuralError> {
        if center_vecs.is_empty() {
            return Err(NeuralError::InvalidConfig(
                "need at least one center".into(),
            ));
        }
        let inputs = xs.cols();

        // Nearest-neighbor widths.
        let widths: Vec<f64> = center_vecs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let nearest = center_vecs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, other)| vector::dist2_sq(c, other).sqrt())
                    .fold(f64::INFINITY, f64::min);
                let w = if nearest.is_finite() {
                    nearest * 1.5
                } else {
                    1.0
                };
                w.max(1e-3)
            })
            .collect();

        let mut units: Vec<RbfUnit> = center_vecs
            .into_iter()
            .zip(widths)
            .map(|(center, width)| RbfUnit {
                center,
                width,
                weight: 0.0,
            })
            .collect();

        // Design matrix of unit responses; readout solved by (ridge-backed)
        // least squares.
        let phi = Matrix::from_fn(xs.rows(), units.len(), |i, j| units[j].response(xs.row(i)));
        let fit = LinearRegression::fit_with(&phi, ys, RegressionOptions::default())
            .map_err(|_| NeuralError::Diverged { epoch: 0 })?;
        for (u, &w) in units.iter_mut().zip(fit.coefficients()) {
            u.weight = w;
        }

        Ok(RbfNetwork {
            units,
            bias: fit.intercept(),
            inputs,
        })
    }

    /// Predict one window.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.inputs);
        self.bias
            + self
                .units
                .iter()
                .map(|u| u.weight * u.response(x))
                .sum::<f64>()
    }

    /// Number of RBF units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when the network has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The units (for diagnostics).
    pub fn units(&self) -> &[RbfUnit] {
        &self.units
    }
}

impl Forecaster for RbfNetwork {
    fn forecast(&self, window: &[f64]) -> f64 {
        self.predict(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_dataset(n: usize, d: usize) -> (Matrix, Vec<f64>) {
        let vals: Vec<f64> = (0..n + d)
            .map(|i| (i as f64 * std::f64::consts::TAU / 25.0).sin())
            .collect();
        let xs = Matrix::from_fn(n, d, |i, j| vals[i + j]);
        let ys = (0..n).map(|i| vals[i + d]).collect();
        (xs, ys)
    }

    #[test]
    fn unit_response_properties() {
        let u = RbfUnit {
            center: vec![0.0, 0.0],
            width: 1.0,
            weight: 1.0,
        };
        assert!((u.response(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(u.response(&[3.0, 0.0]) < u.response(&[1.0, 0.0]));
        assert!(u.response(&[100.0, 0.0]) < 1e-10);
    }

    #[test]
    fn validation_errors() {
        let (xs, ys) = wave_dataset(50, 3);
        assert!(RbfNetwork::train(&xs, &ys, 0, 1).is_err());
        assert!(RbfNetwork::train(&xs, &ys[..10], 5, 1).is_err());
        assert!(RbfNetwork::train(&Matrix::zeros(0, 3), &[], 5, 1).is_err());
    }

    #[test]
    fn fits_smooth_function_well() {
        let (xs, ys) = wave_dataset(300, 4);
        let net = RbfNetwork::train(&xs, &ys, 30, 7).unwrap();
        let mse: f64 = (0..xs.rows())
            .map(|i| {
                let e = net.predict(xs.row(i)) - ys[i];
                e * e
            })
            .sum::<f64>()
            / xs.rows() as f64;
        // Loose enough to be robust to which rows the seeded shuffle picks
        // as centers; a bad fit on this wave is an order of magnitude worse.
        assert!(mse < 5e-3, "training MSE {mse}");
        assert_eq!(net.len(), 30);
        assert!(!net.is_empty());
    }

    #[test]
    fn centers_capped_by_rows() {
        let (xs, ys) = wave_dataset(10, 2);
        let net = RbfNetwork::train(&xs, &ys, 100, 3).unwrap();
        assert!(net.len() <= 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = wave_dataset(80, 3);
        let a = RbfNetwork::train(&xs, &ys, 10, 11).unwrap();
        let b = RbfNetwork::train(&xs, &ys, 10, 11).unwrap();
        assert_eq!(a, b);
        let c = RbfNetwork::train(&xs, &ys, 10, 12).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn kmeans_centers_fit_at_least_as_well_on_structured_data() {
        let (xs, ys) = wave_dataset(300, 4);
        let random = RbfNetwork::train(&xs, &ys, 15, 7).unwrap();
        let clustered = RbfNetwork::train_kmeans(&xs, &ys, 15, 7).unwrap();
        let mse = |net: &RbfNetwork| -> f64 {
            (0..xs.rows())
                .map(|i| {
                    let e = net.predict(xs.row(i)) - ys[i];
                    e * e
                })
                .sum::<f64>()
                / xs.rows() as f64
        };
        let m_random = mse(&random);
        let m_clustered = mse(&clustered);
        // k-means should be competitive — allow a small slack since random
        // sampling can get lucky on a smooth 1-signal manifold.
        assert!(
            m_clustered < m_random * 2.0 && m_clustered < 1e-2,
            "clustered {m_clustered} vs random {m_random}"
        );
        assert_eq!(clustered.len(), 15);
    }

    #[test]
    fn from_centers_rejects_empty() {
        let (xs, ys) = wave_dataset(50, 3);
        assert!(RbfNetwork::from_centers(&xs, &ys, vec![]).is_err());
    }

    #[test]
    fn forecaster_trait_and_serde() {
        let (xs, ys) = wave_dataset(60, 3);
        let net = RbfNetwork::train(&xs, &ys, 8, 1).unwrap();
        let w = [0.1, 0.2, 0.3];
        assert_eq!(net.forecast(&w), net.predict(&w));
        // JSON can lose an ULP per float, so compare behaviour, not bits.
        let json = serde_json::to_string(&net).unwrap();
        let back: RbfNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(net.len(), back.len());
        assert!((net.predict(&w) - back.predict(&w)).abs() < 1e-9);
    }
}
