//! Naive forecasting baselines.
//!
//! Not neural, but they live with the other comparators: persistence, the
//! window mean, the drift extrapolation, and the seasonal-naive rule. Any
//! learned forecaster that cannot beat these on a given series is not
//! learning anything — the integration tests hold the rule system to that
//! bar.

use crate::error::NeuralError;
use crate::Forecaster;

/// Predict the last window value (`x̂_{t+τ} = x_t`) — the classic
/// persistence / random-walk baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Persistence;

impl Forecaster for Persistence {
    fn forecast(&self, window: &[f64]) -> f64 {
        *window.last().expect("window is non-empty")
    }
}

/// Predict the mean of the window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowMean;

impl Forecaster for WindowMean {
    fn forecast(&self, window: &[f64]) -> f64 {
        window.iter().sum::<f64>() / window.len() as f64
    }
}

/// Extrapolate the window's average slope `τ` steps past its end:
/// `x̂ = x_t + τ · (x_t − x_1)/(D−1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Drift {
    horizon: usize,
}

impl Drift {
    /// Build for a given horizon.
    ///
    /// # Errors
    /// [`NeuralError::InvalidConfig`] when `horizon == 0`.
    pub fn new(horizon: usize) -> Result<Drift, NeuralError> {
        if horizon == 0 {
            return Err(NeuralError::InvalidConfig("horizon must be >= 1".into()));
        }
        Ok(Drift { horizon })
    }
}

impl Forecaster for Drift {
    fn forecast(&self, window: &[f64]) -> f64 {
        let last = *window.last().expect("window is non-empty");
        if window.len() < 2 {
            return last;
        }
        let slope = (last - window[0]) / (window.len() - 1) as f64;
        last + slope * self.horizon as f64
    }
}

/// Seasonal-naive: predict the value one season back from the target, i.e.
/// the window entry `period − τ` positions before its end (when the window
/// is long enough to contain it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeasonalNaive {
    period: usize,
    horizon: usize,
}

impl SeasonalNaive {
    /// Build for a seasonal `period` and prediction `horizon`. The target
    /// sits `horizon` past the window end, so the same-phase history value
    /// is `period − horizon` before the end — which must lie inside the
    /// window (`horizon < period`, `window ≥ period − horizon`).
    ///
    /// # Errors
    /// [`NeuralError::InvalidConfig`] when `period == 0`, `horizon == 0`, or
    /// `horizon >= period`.
    pub fn new(period: usize, horizon: usize) -> Result<SeasonalNaive, NeuralError> {
        if period == 0 || horizon == 0 {
            return Err(NeuralError::InvalidConfig(
                "period and horizon must be >= 1".into(),
            ));
        }
        if horizon >= period {
            return Err(NeuralError::InvalidConfig(format!(
                "horizon {horizon} must be < period {period}"
            )));
        }
        Ok(SeasonalNaive { period, horizon })
    }
}

impl Forecaster for SeasonalNaive {
    fn forecast(&self, window: &[f64]) -> f64 {
        // Target index = last + horizon; one period earlier is
        // `period − horizon` positions before the last window entry.
        let back = self.period - self.horizon;
        if back < window.len() {
            window[window.len() - 1 - back]
        } else {
            // Window shorter than a season: fall back to persistence.
            *window.last().expect("window is non-empty")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_returns_last() {
        assert_eq!(Persistence.forecast(&[1.0, 2.0, 7.5]), 7.5);
        assert_eq!(Persistence.forecast(&[3.0]), 3.0);
    }

    #[test]
    fn window_mean() {
        assert_eq!(WindowMean.forecast(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn drift_extrapolates_slope() {
        // Window [0, 1, 2, 3], slope 1, horizon 2 -> 5.
        let d = Drift::new(2).unwrap();
        assert_eq!(d.forecast(&[0.0, 1.0, 2.0, 3.0]), 5.0);
        // Single-point window: persistence fallback.
        assert_eq!(d.forecast(&[4.0]), 4.0);
        assert!(Drift::new(0).is_err());
    }

    #[test]
    fn drift_exact_on_linear_series() {
        let vals: Vec<f64> = (0..50).map(|i| 3.0 * i as f64 + 1.0).collect();
        let d = Drift::new(7).unwrap();
        for start in 0..40 {
            let window = &vals[start..start + 5];
            let predicted = d.forecast(window);
            let actual = 3.0 * (start + 4 + 7) as f64 + 1.0;
            assert!((predicted - actual).abs() < 1e-9);
        }
    }

    #[test]
    fn seasonal_naive_validation_and_lookup() {
        assert!(SeasonalNaive::new(0, 1).is_err());
        assert!(SeasonalNaive::new(12, 0).is_err());
        assert!(SeasonalNaive::new(12, 12).is_err());
        // period 4, horizon 1: target is last+1, same phase is 3 positions
        // before the last entry -> index 1 of a 5-long window.
        let s = SeasonalNaive::new(4, 1).unwrap();
        assert_eq!(s.forecast(&[10.0, 20.0, 30.0, 40.0, 50.0]), 20.0);
    }

    #[test]
    fn seasonal_naive_exact_on_periodic_series() {
        // Period-4 repeating series: seasonal naive is exact.
        let vals: Vec<f64> = (0..40).map(|i| [5.0, 1.0, -2.0, 8.0][i % 4]).collect();
        let s = SeasonalNaive::new(4, 2).unwrap();
        for start in 0..30 {
            let window = &vals[start..start + 6];
            let actual = vals[start + 5 + 2];
            assert_eq!(s.forecast(window), actual);
        }
    }

    #[test]
    fn seasonal_naive_short_window_falls_back() {
        let s = SeasonalNaive::new(10, 1).unwrap();
        // back = 9 >= window len 3: persistence.
        assert_eq!(s.forecast(&[1.0, 2.0, 3.0]), 3.0);
    }
}
