//! Neural-network baselines for `evoforecast`.
//!
//! The paper compares its rule system against published neural results:
//!
//! * **Table 1 (Venice)** — a multilayer feedforward network (Zaldívar et
//!   al. 2000) → [`mlp::Mlp`],
//! * **Table 2 (Mackey-Glass)** — RAN (Platt 1991) and MRAN (Yingwei,
//!   Sundararajan & Saratchandran 1997) → [`ran::Ran`] / [`mran::Mran`],
//! * **Table 3 (sunspots)** — feedforward and recurrent networks (Galván &
//!   Isasi 2001) → [`mlp::Mlp`] and [`elman::Elman`].
//!
//! All comparators are re-implemented from scratch so the benchmark harness
//! regenerates *both* columns of every table on the same data. A classic
//! fixed-center RBF network ([`rbf::RbfNetwork`]) is included as the shared
//! substrate of RAN/MRAN and as an extra baseline.
//!
//! Every trainer is deterministic given its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels below index several structures in lockstep (matrix rows,
// momentum buffers, context vectors); indexed loops state that intent more
// clearly than clippy's zip/enumerate rewrites.
#![allow(clippy::needless_range_loop)]

pub mod activation;
pub mod elman;
pub mod error;
pub mod kmeans;
pub mod mlp;
pub mod mran;
pub mod naive;
pub mod ran;
pub mod rbf;

pub use elman::Elman;
pub use error::NeuralError;
pub use mlp::Mlp;
pub use mran::Mran;
pub use naive::{Drift, Persistence, SeasonalNaive, WindowMean};
pub use ran::Ran;
pub use rbf::RbfNetwork;

/// One-step-ahead forecaster interface shared by all baselines, mirroring
/// the rule system's predictor so the bench harness can treat every system
/// uniformly (baselines never abstain — their "coverage" is always 100 %).
pub trait Forecaster {
    /// Predict the horizon-τ target from a window of `D` values.
    fn forecast(&self, window: &[f64]) -> f64;
}
