//! Wire protocol of the forecast server.
//!
//! Every body is JSON. Successful forecasts return [`ForecastResponse`];
//! every failure — malformed input, capacity, deadline — returns an
//! [`ErrorResponse`] with a machine-readable [`ErrorKind`], never a dropped
//! connection. Clients can rely on `error` for dispatch and treat `message`
//! as human-readable context.

use serde::{Deserialize, Serialize};

fn default_model() -> String {
    "default".to_string()
}

fn default_horizon() -> usize {
    1
}

/// Which prediction engine answers a request — both are bit-identical, the
/// switch exists for A/B measurement (and as an escape hatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum EngineKind {
    /// Interval-projection compiled predictor (binary searches + bitset AND).
    #[default]
    Compiled,
    /// The original O(R·D) linear scan over every rule.
    Scan,
}

/// How simultaneously firing rules are combined — mirrors
/// [`evoforecast_core::Combination`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum CombinationMode {
    /// The paper's rule: plain mean over firing rules.
    #[default]
    Mean,
    /// Weight each firing rule by the inverse of its expected error.
    InverseErrorWeighted,
}

impl CombinationMode {
    /// Lower to the core combination strategy.
    pub fn to_core(self) -> evoforecast_core::Combination {
        match self {
            CombinationMode::Mean => evoforecast_core::Combination::Mean,
            CombinationMode::InverseErrorWeighted => {
                evoforecast_core::Combination::InverseErrorWeighted
            }
        }
    }
}

/// `POST /forecast` body: one or more windows for one model slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForecastRequest {
    /// Model slot to query.
    #[serde(default = "default_model")]
    pub model: String,
    /// Micro-batch of windows, each `D` values oldest-first.
    #[serde(default)]
    pub windows: Vec<Vec<f64>>,
    /// Closed-loop steps ahead. `1` (default) answers at the model's trained
    /// horizon τ; `> 1` iterates a τ = 1, spacing-1 model that many steps.
    #[serde(default = "default_horizon")]
    pub horizon: usize,
    /// Rule-combination strategy.
    #[serde(default)]
    pub combination: CombinationMode,
    /// Opt in to per-window firing diagnostics.
    #[serde(default)]
    pub detail: bool,
    /// Prediction engine (A/B switch; both engines are bit-identical).
    #[serde(default)]
    pub engine: EngineKind,
}

/// Per-window diagnostics, present when the request set `detail`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowDetail {
    /// Number of rules that fired.
    pub firing_rules: usize,
    /// Mean expected error of the firing rules — the system's own
    /// confidence estimate.
    pub expected_error: f64,
}

/// `POST /forecast` success body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForecastResponse {
    /// Model slot that answered.
    pub model: String,
    /// Registry version of the model that answered (bumped on hot reload).
    pub model_version: u64,
    /// Engine that produced the predictions.
    pub engine: EngineKind,
    /// One entry per request window: the forecast, or `null` when every rule
    /// abstained. With `horizon > 1` this is the **first** step of each
    /// trajectory (or `null` when the free run died immediately).
    pub predictions: Vec<Option<f64>>,
    /// With `horizon > 1`: the full closed-loop trajectory per window,
    /// truncated early where the system abstained.
    #[serde(default)]
    pub trajectories: Option<Vec<Vec<f64>>>,
    /// With `detail = true`: per-window diagnostics (`null` on abstention).
    #[serde(default)]
    pub details: Option<Vec<Option<WindowDetail>>>,
    /// How many request windows got no prediction.
    pub abstained: usize,
}

/// `POST /reload` body: swap a model slot from an on-disk artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReloadRequest {
    /// Slot to (re)load.
    #[serde(default = "default_model")]
    pub model: String,
    /// Path to the artifact on the server's filesystem.
    pub path: String,
    /// Artifact flavor at `path`.
    #[serde(default)]
    pub kind: ArtifactKind,
}

/// On-disk artifact flavors the registry can load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ArtifactKind {
    /// A [`evoforecast_core::prelude::TrainedModel`] `save_json` file
    /// (self-describing: carries its window spec).
    #[default]
    Model,
    /// An [`evoforecast_core::EnsembleCheckpoint`] written by the
    /// fault-tolerant supervisor; the slot must already exist so the window
    /// spec can be inherited.
    Checkpoint,
}

/// `POST /reload` success body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReloadResponse {
    /// Slot that was swapped.
    pub model: String,
    /// New registry version.
    pub version: u64,
    /// Rules in the freshly loaded set.
    pub rules: usize,
    /// Config fingerprint of the loaded artifact.
    pub fingerprint: u64,
}

/// One registry slot as reported by `GET /models`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Slot name.
    pub name: String,
    /// Registry version (bumped on each successful reload).
    pub version: u64,
    /// Rules in the live set.
    pub rules: usize,
    /// Window length `D` the model expects.
    pub window: usize,
    /// Forecast horizon τ it was trained for.
    pub horizon: usize,
    /// Tap spacing Δ.
    pub spacing: usize,
    /// Config fingerprint reloads must match.
    pub fingerprint: u64,
}

/// Machine-readable failure classes. Serialized kebab-case on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ErrorKind {
    /// Body was not valid JSON / not a valid request object.
    BadRequest,
    /// The requested model slot does not exist.
    ModelNotFound,
    /// A window's length differs from the model's `D`.
    WindowLengthMismatch,
    /// A window contains NaN/∞ (JSON `null` parses as NaN).
    NonFiniteInput,
    /// The request contained no windows.
    EmptyRequest,
    /// More windows than the server's micro-batch cap.
    BatchTooLarge,
    /// Request body exceeded the configured byte limit.
    PayloadTooLarge,
    /// `horizon > 1` on a model not trained at τ = 1, Δ = 1.
    UnsupportedHorizon,
    /// The request spent longer than the deadline in queue + processing.
    DeadlineExceeded,
    /// Admission queue full — load was shed; retry with backoff.
    Overloaded,
    /// Artifact fingerprint differs from the slot's contract; old model
    /// keeps serving.
    FingerprintMismatch,
    /// The artifact could not be read or parsed.
    ReloadFailed,
    /// No route at this path.
    NotFound,
    /// Route exists, method is wrong.
    MethodNotAllowed,
}

impl ErrorKind {
    /// The HTTP status code this error class maps to.
    pub fn status(self) -> u16 {
        match self {
            ErrorKind::BadRequest
            | ErrorKind::WindowLengthMismatch
            | ErrorKind::NonFiniteInput
            | ErrorKind::EmptyRequest
            | ErrorKind::UnsupportedHorizon => 400,
            ErrorKind::ModelNotFound | ErrorKind::NotFound => 404,
            ErrorKind::MethodNotAllowed => 405,
            ErrorKind::FingerprintMismatch => 409,
            ErrorKind::BatchTooLarge | ErrorKind::PayloadTooLarge => 413,
            ErrorKind::ReloadFailed => 422,
            ErrorKind::Overloaded => 429,
            ErrorKind::DeadlineExceeded => 504,
        }
    }
}

/// Typed failure body — the only shape errors are ever reported in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Failure class for client dispatch.
    pub error: ErrorKind,
    /// Human-readable context.
    pub message: String,
}

impl ErrorResponse {
    /// Build a typed error body.
    pub fn new(error: ErrorKind, message: impl Into<String>) -> ErrorResponse {
        ErrorResponse {
            error,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_fill_in() {
        let req: ForecastRequest = serde_json::from_str(r#"{"windows": [[1.0, 2.0]]}"#).unwrap();
        assert_eq!(req.model, "default");
        assert_eq!(req.horizon, 1);
        assert_eq!(req.combination, CombinationMode::Mean);
        assert_eq!(req.engine, EngineKind::Compiled);
        assert!(!req.detail);
        assert_eq!(req.windows, vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn kebab_case_enums_round_trip() {
        let req: ForecastRequest = serde_json::from_str(
            r#"{"windows": [], "combination": "inverse-error-weighted", "engine": "scan"}"#,
        )
        .unwrap();
        assert_eq!(req.combination, CombinationMode::InverseErrorWeighted);
        assert_eq!(req.engine, EngineKind::Scan);
        let json = serde_json::to_string(&req).unwrap();
        let back: ForecastRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.combination, req.combination);
        assert_eq!(back.engine, req.engine);
    }

    #[test]
    fn null_window_value_parses_as_nan() {
        let req: ForecastRequest = serde_json::from_str(r#"{"windows": [[1.0, null]]}"#).unwrap();
        assert!(req.windows[0][1].is_nan());
    }

    #[test]
    fn error_kinds_map_to_statuses() {
        assert_eq!(ErrorKind::BadRequest.status(), 400);
        assert_eq!(ErrorKind::ModelNotFound.status(), 404);
        assert_eq!(ErrorKind::Overloaded.status(), 429);
        assert_eq!(ErrorKind::DeadlineExceeded.status(), 504);
        assert_eq!(ErrorKind::FingerprintMismatch.status(), 409);
    }

    #[test]
    fn error_response_serializes_kebab_kind() {
        let body = serde_json::to_string(&ErrorResponse::new(ErrorKind::WindowLengthMismatch, "w"))
            .unwrap();
        assert!(body.contains("window-length-mismatch"), "{body}");
        let back: ErrorResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(back.error, ErrorKind::WindowLengthMismatch);
    }

    #[test]
    fn reload_request_defaults() {
        let req: ReloadRequest = serde_json::from_str(r#"{"path": "/tmp/m.json"}"#).unwrap();
        assert_eq!(req.model, "default");
        assert_eq!(req.kind, ArtifactKind::Model);
    }
}
