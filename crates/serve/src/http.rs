//! Minimal HTTP/1.1 framing over a `TcpStream` — just enough for a JSON
//! request/response protocol with `Connection: close` semantics, so the
//! server needs no external HTTP dependency.
//!
//! Supported: request line + headers, `Content-Length` bodies (capped),
//! status-line responses with a JSON body. Not supported (typed 400 instead
//! of undefined behavior): chunked transfer encoding, multiline headers,
//! HTTP/2.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers before the request is rejected —
/// a slow-loris / junk-stream guard independent of the body cap.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, and raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... uppercased as received.
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be framed.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request line/headers or unsupported framing.
    BadRequest(String),
    /// Declared `Content-Length` exceeds the configured cap.
    PayloadTooLarge {
        /// Bytes the client declared.
        declared: usize,
        /// Server's limit.
        limit: usize,
    },
    /// The socket timed out mid-request (read timeout is the deadline).
    Timeout,
    /// The peer disconnected or another I/O error occurred.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::PayloadTooLarge { declared, limit } => {
                write!(f, "payload of {declared} bytes exceeds limit {limit}")
            }
            HttpError::Timeout => write!(f, "timed out reading request"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

/// Read one request from the stream. `max_body` caps the accepted
/// `Content-Length`.
///
/// # Errors
/// [`HttpError`] as documented on the variants.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;

    let request_line = read_line(&mut reader, &mut head_bytes)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let line = read_line(&mut reader, &mut head_bytes)?;
        if line.is_empty() {
            break; // end of headers
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {value:?}")))?;
        } else if name == "transfer-encoding" {
            return Err(HttpError::BadRequest(
                "chunked transfer encoding is not supported".into(),
            ));
        }
    }

    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::BadRequest("body shorter than content-length".into())
        } else {
            HttpError::from(e)
        }
    })?;
    Ok(Request { method, path, body })
}

/// Read one CRLF- (or LF-) terminated header line, enforcing the head cap.
fn read_line(
    reader: &mut BufReader<&mut TcpStream>,
    head_bytes: &mut usize,
) -> Result<String, HttpError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(HttpError::from)?;
    if n == 0 {
        return Err(HttpError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-request",
        )));
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(HttpError::BadRequest("request head too large".into()));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Standard reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Write a complete JSON response and flush. One response per connection
/// (`Connection: close`).
///
/// # Errors
/// I/O errors from the socket (the peer may already be gone; callers treat
/// this as best-effort).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        status,
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// Run `client` against a one-shot server that parses a request and
    /// returns the parse result.
    fn parse_via_socket(raw: &[u8], max_body: usize) -> (Result<Request, HttpError>, Vec<u8>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            out
        });
        let (mut stream, _) = listener.accept().unwrap();
        let parsed = read_request(&mut stream, max_body);
        write_response(&mut stream, 200, "{}").unwrap();
        drop(stream);
        (parsed, client.join().unwrap())
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /forecast HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let (parsed, reply) = parse_via_socket(raw, 1024);
        let req = parsed.unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/forecast");
        assert_eq!(req.body, b"body");
        let reply = String::from_utf8(reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.ends_with("\r\n\r\n{}"), "{reply}");
    }

    #[test]
    fn strips_query_string_and_lowercases_headers() {
        let raw = b"GET /stats?verbose=1 HTTP/1.1\r\nCONTENT-LENGTH: 0\r\n\r\n";
        let (parsed, _) = parse_via_socket(raw, 1024);
        let req = parsed.unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_request_line() {
        let (parsed, _) = parse_via_socket(b"this is not http\r\n\r\n", 1024);
        assert!(matches!(parsed, Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn rejects_oversized_body_by_declared_length() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        let (parsed, _) = parse_via_socket(raw, 1024);
        assert!(matches!(
            parsed,
            Err(HttpError::PayloadTooLarge {
                declared: 999_999,
                limit: 1024
            })
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        let (parsed, _) = parse_via_socket(raw, 1024);
        assert!(matches!(parsed, Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn rejects_chunked_encoding() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let (parsed, _) = parse_via_socket(raw, 1024);
        assert!(matches!(parsed, Err(HttpError::BadRequest(_))));
    }
}
