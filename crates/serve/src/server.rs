//! The threaded forecast server.
//!
//! Architecture: one accept thread and a fixed worker pool joined by a
//! *bounded* crossbeam channel. The accept thread never blocks on a full
//! queue — `try_send` either admits the connection (recording its admission
//! instant for the deadline clock) or sheds it with an immediate typed 429.
//! Workers pull connections, frame one HTTP request, answer it, and close.
//! Shutdown drops the channel's only sender; workers drain whatever was
//! already admitted, then exit — graceful drain for free from channel
//! semantics.
//!
//! Request handlers never lock while predicting: they clone the slot's
//! `Arc<ModelEntry>` once and work on that snapshot, which is what makes
//! hot reload torn-state-free.

use crate::http::{self, HttpError, Request};
use crate::protocol::{
    EngineKind, ErrorKind, ErrorResponse, ForecastRequest, ForecastResponse, ReloadRequest,
    ReloadResponse, WindowDetail,
};
use crate::registry::{ModelEntry, ModelRegistry, RegistryError};
use crate::stats::ServerStats;
use crossbeam::channel::{self, TrySendError};
use serde::Serialize;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8471` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Admitted-but-unserved connections the queue holds before shedding.
    pub queue_depth: usize,
    /// End-to-end budget per request (queue wait + read + predict + write).
    pub deadline: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Largest accepted `windows` micro-batch.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(2),
            max_body_bytes: 1 << 20,
            max_batch: 256,
        }
    }
}

/// A connection admitted by the accept thread, stamped for the deadline
/// clock.
struct Admitted {
    stream: TcpStream,
    admitted_at: Instant,
}

/// A running forecast server. Dropping the handle without calling
/// [`Server::shutdown`] detaches the threads (the process keeps serving).
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept thread and worker pool, and return
    /// immediately.
    ///
    /// # Errors
    /// I/O errors from binding the listener.
    pub fn start(config: ServerConfig, registry: Arc<ModelRegistry>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::bounded::<Admitted>(config.queue_depth.max(1));

        let mut worker_handles: Vec<JoinHandle<()>> = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx = rx.clone();
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let config = config.clone();
            let handle = std::thread::Builder::new()
                .name(format!("forecast-worker-{i}"))
                .spawn(move || {
                    while let Ok(admitted) = rx.recv() {
                        handle_connection(admitted, &registry, &stats, &config);
                    }
                })?;
            worker_handles.push(handle);
        }

        let accept_handle = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("forecast-accept".to_string())
                .spawn(move || {
                    // `tx` lives in this thread only: when the loop breaks,
                    // the channel disconnects and workers drain then exit.
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let admitted = Admitted {
                            stream,
                            admitted_at: Instant::now(),
                        };
                        if let Err(e) = tx.try_send(admitted) {
                            match e {
                                TrySendError::Full(rejected) => {
                                    ServerStats::inc(&stats.shed);
                                    shed(rejected.stream);
                                }
                                TrySendError::Disconnected(_) => break,
                            }
                        }
                    }
                })?
        };

        Ok(Server {
            local_addr,
            registry,
            stats,
            stop,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The address the server actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry this server serves from (shared; installs/hot reloads
    /// through it are visible to in-flight traffic).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Stop accepting, drain every already-admitted connection, and join all
    /// threads. Requests admitted before the call are fully answered.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop only re-checks the flag per connection; poke it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Block until the server exits on its own (it doesn't, short of thread
    /// panic) — the foreground mode the CLI uses.
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Best-effort typed 429 on the accept thread, then close.
fn shed(mut stream: TcpStream) {
    let body = ErrorResponse::new(
        ErrorKind::Overloaded,
        "admission queue full; retry with backoff",
    );
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = http::write_response(&mut stream, ErrorKind::Overloaded.status(), &to_json(&body));
}

fn to_json<T: Serialize>(value: &T) -> String {
    // Response types are plain data structs, so serialization cannot fail in
    // practice; if it ever does, degrade to a valid JSON error body rather
    // than panicking the worker mid-response.
    serde_json::to_string(value).unwrap_or_else(|_| {
        "{\"error\":\"internal\",\"message\":\"response serialization failed\"}".to_string()
    })
}

/// Outcome of routing: a status + serialized body.
struct Reply {
    status: u16,
    body: String,
    ok: bool,
}

impl Reply {
    fn ok<T: Serialize>(value: &T) -> Reply {
        Reply {
            status: 200,
            body: to_json(value),
            ok: true,
        }
    }

    fn error(kind: ErrorKind, message: impl Into<String>) -> Reply {
        Reply {
            status: kind.status(),
            body: to_json(&ErrorResponse::new(kind, message.into())),
            ok: false,
        }
    }
}

/// Serve one admitted connection end to end. Never panics on malformed
/// input; every failure is answered as a typed error when the socket still
/// allows it.
fn handle_connection(
    admitted: Admitted,
    registry: &ModelRegistry,
    stats: &ServerStats,
    config: &ServerConfig,
) {
    let Admitted {
        mut stream,
        admitted_at,
    } = admitted;
    ServerStats::inc(&stats.requests);

    // The socket timeouts are the enforcement mechanism for the deadline
    // while blocked on I/O; elapsed-time checks cover the compute between.
    let remaining = config.deadline.saturating_sub(admitted_at.elapsed());
    let io_budget = remaining.max(Duration::from_millis(1));
    let _ = stream.set_read_timeout(Some(io_budget));
    let _ = stream.set_write_timeout(Some(io_budget));

    let reply = match http::read_request(&mut stream, config.max_body_bytes) {
        Ok(request) => route(&request, registry, stats, config, admitted_at),
        Err(HttpError::Timeout) => Reply::error(
            ErrorKind::DeadlineExceeded,
            format!("request not received within {:?}", config.deadline),
        ),
        Err(HttpError::PayloadTooLarge { declared, limit }) => Reply::error(
            ErrorKind::PayloadTooLarge,
            format!("body of {declared} bytes exceeds limit {limit}"),
        ),
        Err(HttpError::BadRequest(msg)) => Reply::error(ErrorKind::BadRequest, msg),
        Err(HttpError::Io(_)) => {
            // Peer vanished before sending a request; nothing to answer.
            ServerStats::inc(&stats.errors);
            stats.latency.record(elapsed_us(admitted_at));
            return;
        }
    };

    ServerStats::inc(if reply.ok { &stats.ok } else { &stats.errors });
    let _ = http::write_response(&mut stream, reply.status, &reply.body);
    stats.latency.record(elapsed_us(admitted_at));
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Dispatch a framed request to its endpoint.
fn route(
    request: &Request,
    registry: &ModelRegistry,
    stats: &ServerStats,
    config: &ServerConfig,
    admitted_at: Instant,
) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/forecast") => forecast(request, registry, stats, config, admitted_at),
        ("POST", "/reload") => reload(request, registry, stats),
        ("GET", "/healthz") => Reply::ok(&Health {
            status: "ok".to_string(),
            models: registry.len(),
        }),
        ("GET", "/models") => Reply::ok(&registry.list()),
        ("GET", "/stats") => Reply::ok(&stats.snapshot()),
        (_, "/forecast" | "/reload" | "/healthz" | "/models" | "/stats") => Reply::error(
            ErrorKind::MethodNotAllowed,
            format!("{} is not allowed on {}", request.method, request.path),
        ),
        (_, path) => Reply::error(ErrorKind::NotFound, format!("no route at {path}")),
    }
}

#[derive(Debug, Serialize)]
struct Health {
    status: String,
    models: usize,
}

/// `POST /forecast`: validate, predict, answer.
fn forecast(
    request: &Request,
    registry: &ModelRegistry,
    stats: &ServerStats,
    config: &ServerConfig,
    admitted_at: Instant,
) -> Reply {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => return Reply::error(ErrorKind::BadRequest, "body is not UTF-8"),
    };
    let req: ForecastRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return Reply::error(ErrorKind::BadRequest, format!("invalid request: {e}")),
    };

    // One atomic grab: everything below sees exactly this model version.
    let Some(entry) = registry.get(&req.model) else {
        return Reply::error(
            ErrorKind::ModelNotFound,
            format!("no model slot named {:?}", req.model),
        );
    };

    if req.windows.is_empty() {
        return Reply::error(ErrorKind::EmptyRequest, "windows must be non-empty");
    }
    if req.windows.len() > config.max_batch {
        return Reply::error(
            ErrorKind::BatchTooLarge,
            format!(
                "{} windows exceed the micro-batch cap of {}",
                req.windows.len(),
                config.max_batch
            ),
        );
    }
    let expected = entry.spec.window();
    for (i, w) in req.windows.iter().enumerate() {
        if w.len() != expected {
            return Reply::error(
                ErrorKind::WindowLengthMismatch,
                format!(
                    "window {i} has {} values, model {:?} expects {expected}",
                    w.len(),
                    req.model
                ),
            );
        }
        if let Some(j) = w.iter().position(|x| !x.is_finite()) {
            return Reply::error(
                ErrorKind::NonFiniteInput,
                format!("window {i} value {j} is not finite"),
            );
        }
    }
    if req.horizon == 0 {
        return Reply::error(ErrorKind::BadRequest, "horizon must be at least 1");
    }
    if req.horizon > 1 && (entry.spec.horizon() != 1 || entry.spec.spacing() != 1) {
        return Reply::error(
            ErrorKind::UnsupportedHorizon,
            format!(
                "closed-loop horizon needs a τ=1, Δ=1 model; {:?} has τ={}, Δ={}",
                req.model,
                entry.spec.horizon(),
                entry.spec.spacing()
            ),
        );
    }
    if admitted_at.elapsed() > config.deadline {
        return Reply::error(
            ErrorKind::DeadlineExceeded,
            format!(
                "deadline of {:?} exhausted before prediction",
                config.deadline
            ),
        );
    }

    let response = predict_batch(&req, &entry);
    stats
        .windows
        .fetch_add(req.windows.len() as u64, Ordering::Relaxed);
    stats
        .abstentions
        .fetch_add(response.abstained as u64, Ordering::Relaxed);
    Reply::ok(&response)
}

/// Run the batch on the snapshot the request grabbed. Both engines are
/// bit-identical (pinned in `evoforecast-core`); the scratch bitset is
/// allocated once and reused across the whole batch.
fn predict_batch(req: &ForecastRequest, entry: &ModelEntry) -> ForecastResponse {
    let combination = req.combination.to_core();
    let empty = entry.compiled.is_empty();
    let mut scratch = entry.compiled.scratch();

    let mut single = |window: &[f64]| -> Option<f64> {
        if empty {
            return None;
        }
        match req.engine {
            EngineKind::Compiled => {
                entry
                    .compiled
                    .predict_with_into(window, combination, &mut scratch)
            }
            EngineKind::Scan => entry.predictor.predict_with(window, combination),
        }
    };

    let mut predictions = Vec::with_capacity(req.windows.len());
    let mut trajectories = (req.horizon > 1).then(|| Vec::with_capacity(req.windows.len()));
    for window in &req.windows {
        if let Some(trajs) = &mut trajectories {
            // Closed-loop free run with the selected engine: slide the
            // window by one per step, stop at the first abstention.
            let mut rolling = window.clone();
            let d = rolling.len();
            let mut traj = Vec::with_capacity(req.horizon);
            for _ in 0..req.horizon {
                match single(&rolling) {
                    Some(p) => {
                        traj.push(p);
                        rolling.rotate_left(1);
                        // audit: allow(panic-freedom) — d == rolling.len() >= 1: validated non-empty at admission
                        rolling[d - 1] = p;
                    }
                    None => break,
                }
            }
            predictions.push(traj.first().copied());
            trajs.push(traj);
        } else {
            predictions.push(single(window));
        }
    }

    let details = req.detail.then(|| {
        req.windows
            .iter()
            .map(|window| {
                if empty {
                    return None;
                }
                let detail = match req.engine {
                    EngineKind::Compiled => {
                        entry.compiled.predict_detailed_into(window, &mut scratch)
                    }
                    EngineKind::Scan => entry.predictor.predict_detailed(window),
                };
                detail.map(|d| WindowDetail {
                    firing_rules: d.firing_rules,
                    expected_error: d.expected_error,
                })
            })
            .collect()
    });

    let abstained = predictions.iter().filter(|p| p.is_none()).count();
    ForecastResponse {
        model: entry.name().to_string(),
        model_version: entry.version,
        engine: req.engine,
        predictions,
        trajectories,
        details,
        abstained,
    }
}

/// `POST /reload`: swap a slot from disk, fingerprint-gated.
fn reload(request: &Request, registry: &ModelRegistry, stats: &ServerStats) -> Reply {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => return Reply::error(ErrorKind::BadRequest, "body is not UTF-8"),
    };
    let req: ReloadRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return Reply::error(ErrorKind::BadRequest, format!("invalid request: {e}")),
    };
    match registry.reload(&req.model, Path::new(&req.path), req.kind) {
        Ok(entry) => {
            ServerStats::inc(&stats.reloads);
            Reply::ok(&ReloadResponse {
                model: entry.name().to_string(),
                version: entry.version,
                rules: entry.predictor.len(),
                fingerprint: entry.fingerprint,
            })
        }
        Err(RegistryError::ModelNotFound(name)) => Reply::error(
            ErrorKind::ModelNotFound,
            format!("checkpoint reload needs an existing slot; {name:?} is empty"),
        ),
        Err(e @ RegistryError::FingerprintMismatch { .. }) => {
            Reply::error(ErrorKind::FingerprintMismatch, e.to_string())
        }
        Err(e @ RegistryError::Artifact(_)) => Reply::error(ErrorKind::ReloadFailed, e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CombinationMode;
    use evoforecast_core::rule::{Condition, Gene, Rule};
    use evoforecast_core::RuleSetPredictor;
    use evoforecast_tsdata::window::WindowSpec;

    fn entry() -> Arc<ModelEntry> {
        let rules = vec![
            Rule {
                condition: Condition::new(vec![Gene::bounded(0.0, 10.0), Gene::Wildcard]),
                coefficients: vec![1.0, 0.0],
                intercept: 1.0,
                prediction: 1.0,
                error: 0.1,
                matched: 5,
            },
            Rule {
                condition: Condition::new(vec![Gene::Wildcard, Gene::bounded(0.0, 5.0)]),
                coefficients: vec![0.0, 2.0],
                intercept: 0.0,
                prediction: 0.0,
                error: 0.2,
                matched: 5,
            },
        ];
        let registry = ModelRegistry::new();
        registry
            .install(
                "default",
                WindowSpec::new(2, 1).unwrap(),
                RuleSetPredictor::new(rules),
            )
            .unwrap()
    }

    fn request(windows: Vec<Vec<f64>>, engine: EngineKind) -> ForecastRequest {
        ForecastRequest {
            model: "default".to_string(),
            windows,
            horizon: 1,
            combination: CombinationMode::Mean,
            detail: false,
            engine,
        }
    }

    #[test]
    fn batch_engines_agree_bitwise() {
        let entry = entry();
        let windows = vec![
            vec![3.0, 4.0],
            vec![50.0, 2.0],
            vec![50.0, 50.0], // abstains
            vec![0.0, 0.0],
        ];
        let compiled = predict_batch(&request(windows.clone(), EngineKind::Compiled), &entry);
        let scan = predict_batch(&request(windows, EngineKind::Scan), &entry);
        let bits = |ps: &[Option<f64>]| -> Vec<Option<u64>> {
            ps.iter().map(|p| p.map(f64::to_bits)).collect()
        };
        assert_eq!(bits(&compiled.predictions), bits(&scan.predictions));
        assert_eq!(compiled.abstained, 1);
        assert_eq!(scan.abstained, 1);
    }

    #[test]
    fn detail_opt_in_reports_firing_rules() {
        let entry = entry();
        let mut req = request(vec![vec![3.0, 4.0], vec![50.0, 50.0]], EngineKind::Compiled);
        req.detail = true;
        let resp = predict_batch(&req, &entry);
        let details = resp.details.unwrap();
        assert_eq!(details[0].as_ref().unwrap().firing_rules, 2);
        assert!(details[1].is_none());
    }

    #[test]
    fn free_run_trajectories_stop_on_abstention() {
        let entry = entry();
        let mut req = request(vec![vec![3.0, 4.0]], EngineKind::Compiled);
        req.horizon = 5;
        let resp = predict_batch(&req, &entry);
        let trajs = resp.trajectories.unwrap();
        assert_eq!(trajs.len(), 1);
        assert!(!trajs[0].is_empty());
        assert!(trajs[0].len() <= 5);
        assert_eq!(resp.predictions[0], trajs[0].first().copied());
        // Scan engine walks the identical trajectory.
        let mut req_scan = request(vec![vec![3.0, 4.0]], EngineKind::Scan);
        req_scan.horizon = 5;
        let scan = predict_batch(&req_scan, &entry);
        assert_eq!(scan.trajectories.unwrap()[0], trajs[0]);
    }

    #[test]
    fn empty_model_abstains_without_panicking() {
        let registry = ModelRegistry::new();
        let entry = registry
            .install(
                "default",
                WindowSpec::new(2, 1).unwrap(),
                RuleSetPredictor::new(vec![]),
            )
            .unwrap();
        let resp = predict_batch(&request(vec![vec![1.0, 2.0]], EngineKind::Compiled), &entry);
        assert_eq!(resp.predictions, vec![None]);
        assert_eq!(resp.abstained, 1);
    }
}
