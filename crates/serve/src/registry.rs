//! Hot-swap model registry: named slots, each an immutable [`ModelEntry`]
//! behind an `Arc`.
//!
//! Swapping a slot replaces the `Arc` under a write lock; request handlers
//! clone the `Arc` under a read lock and then predict entirely lock-free, so
//! an in-flight request always sees exactly one model — the one it grabbed
//! at admission — never a torn mix of old rules and new payloads. Reloads
//! over the wire are gated by a config fingerprint recorded when the slot
//! was first filled: an artifact trained under a different windowing
//! contract is rejected and the old model keeps serving.

use crate::protocol::{ArtifactKind, ModelInfo};
use evoforecast_core::checkpoint::fingerprint_json;
use evoforecast_core::prelude::TrainedModel;
use evoforecast_core::{CompiledRuleSet, EnsembleCheckpoint, RuleSetPredictor};
use evoforecast_tsdata::window::WindowSpec;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// One immutable model slot value. Everything a request needs is inside, so
/// a cloned `Arc<ModelEntry>` keeps serving consistently even while the
/// registry swaps the slot underneath.
#[derive(Debug)]
pub struct ModelEntry {
    name: String,
    /// Windowing contract (`D`, τ, Δ) the rules expect.
    pub spec: WindowSpec,
    /// Config fingerprint reloads must match.
    pub fingerprint: u64,
    /// Bumped on every successful swap of this slot.
    pub version: u64,
    /// The rule set in scan form (reference engine, free-run, diagnostics).
    pub predictor: RuleSetPredictor,
    /// The same rule set lowered for serving.
    pub compiled: CompiledRuleSet,
}

impl ModelEntry {
    /// Slot name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Introspection row for `GET /models`.
    pub fn info(&self) -> ModelInfo {
        ModelInfo {
            name: self.name.clone(),
            version: self.version,
            rules: self.predictor.len(),
            window: self.spec.window(),
            horizon: self.spec.horizon(),
            spacing: self.spec.spacing(),
            fingerprint: self.fingerprint,
        }
    }
}

/// Why a registry operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The named slot does not exist (and the operation needs it to).
    ModelNotFound(String),
    /// Artifact fingerprint differs from the slot's recorded contract.
    FingerprintMismatch {
        /// Slot that rejected the swap.
        slot: String,
        /// Fingerprint the slot requires.
        expected: u64,
        /// Fingerprint the artifact carries.
        found: u64,
    },
    /// The artifact could not be read, parsed, or is internally inconsistent.
    Artifact(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::ModelNotFound(name) => write!(f, "no model slot named {name:?}"),
            RegistryError::FingerprintMismatch {
                slot,
                expected,
                found,
            } => write!(
                f,
                "slot {slot:?} requires config fingerprint {expected}, artifact has {found}"
            ),
            RegistryError::Artifact(msg) => write!(f, "artifact rejected: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Fingerprint of a windowing contract: FNV-1a over the spec's canonical
/// JSON, the same hash family PR 3 checkpoints use for their config.
pub fn spec_fingerprint(spec: &WindowSpec) -> u64 {
    // audit: allow(panic-freedom) — WindowSpec is a plain struct of integers; serializing it cannot fail
    let json = serde_json::to_string(spec).expect("WindowSpec always serializes");
    fingerprint_json(&json)
}

/// Thread-safe collection of named model slots.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    slots: RwLock<BTreeMap<String, Arc<ModelEntry>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Grab the current model of a slot. The returned `Arc` stays valid (and
    /// internally consistent) regardless of later swaps.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.read_slots().get(name).cloned()
    }

    /// Number of filled slots.
    pub fn len(&self) -> usize {
        self.read_slots().len()
    }

    /// True when no slot is filled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Introspection rows for every slot, name-ordered.
    pub fn list(&self) -> Vec<ModelInfo> {
        self.read_slots().values().map(|e| e.info()).collect()
    }

    /// Take the read lock, recovering from poisoning: the map holds only
    /// `Arc<ModelEntry>` values and every write is a validate-then-insert,
    /// so a panicking writer can never leave a half-updated entry behind.
    fn read_slots(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ModelEntry>>> {
        self.slots
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Administratively fill a slot from an in-memory model, bypassing the
    /// fingerprint gate (this is how slots are born; the installed
    /// fingerprint becomes the slot's contract for wire reloads). Bumps the
    /// version when the slot already existed.
    ///
    /// # Errors
    /// [`RegistryError::Artifact`] when the rule set is internally
    /// inconsistent with the spec (mixed or wrong window lengths).
    pub fn install(
        &self,
        name: &str,
        spec: WindowSpec,
        predictor: RuleSetPredictor,
    ) -> Result<Arc<ModelEntry>, RegistryError> {
        let fingerprint = spec_fingerprint(&spec);
        self.swap(name, spec, predictor, fingerprint, None)
    }

    /// [`ModelRegistry::install`] from a self-describing trained-model
    /// artifact.
    ///
    /// # Errors
    /// See [`ModelRegistry::install`].
    pub fn install_trained(
        &self,
        name: &str,
        model: TrainedModel,
    ) -> Result<Arc<ModelEntry>, RegistryError> {
        self.install(name, model.spec, model.predictor)
    }

    /// Load an artifact from disk and swap it into a slot, enforcing the
    /// fingerprint contract. This is the wire-reload path: on any error the
    /// registry is untouched and the old model keeps serving.
    ///
    /// A [`ArtifactKind::Model`] artifact may also fill a brand-new slot
    /// (its own fingerprint becomes the contract); a
    /// [`ArtifactKind::Checkpoint`] carries no window spec, so the slot must
    /// already exist to inherit one.
    ///
    /// # Errors
    /// [`RegistryError`] as documented on the variants.
    pub fn reload(
        &self,
        name: &str,
        path: &Path,
        kind: ArtifactKind,
    ) -> Result<Arc<ModelEntry>, RegistryError> {
        let existing = self.get(name);
        let (spec, predictor, fingerprint) = match kind {
            ArtifactKind::Model => {
                let model = TrainedModel::load_json_file(path)
                    .map_err(|e| RegistryError::Artifact(format!("{}: {e}", path.display())))?;
                let fp = spec_fingerprint(&model.spec);
                (model.spec, model.predictor, fp)
            }
            ArtifactKind::Checkpoint => {
                let slot = existing
                    .as_ref()
                    .ok_or_else(|| RegistryError::ModelNotFound(name.to_string()))?;
                let cp = EnsembleCheckpoint::load(path)
                    .map_err(|e| RegistryError::Artifact(format!("{}: {e}", path.display())))?;
                let predictor = RuleSetPredictor::new(cp.rules);
                (slot.spec, predictor, cp.config_fingerprint)
            }
        };
        if let Some(slot) = &existing {
            if slot.fingerprint != fingerprint {
                return Err(RegistryError::FingerprintMismatch {
                    slot: name.to_string(),
                    expected: slot.fingerprint,
                    found: fingerprint,
                });
            }
        }
        self.swap(name, spec, predictor, fingerprint, existing)
    }

    /// Validate, compile, and atomically publish a new entry.
    fn swap(
        &self,
        name: &str,
        spec: WindowSpec,
        predictor: RuleSetPredictor,
        fingerprint: u64,
        grabbed: Option<Arc<ModelEntry>>,
    ) -> Result<Arc<ModelEntry>, RegistryError> {
        if let Some(bad) = predictor
            .rules()
            .iter()
            .find(|r| r.window_len() != spec.window())
        {
            return Err(RegistryError::Artifact(format!(
                "rule with window length {} in a spec-{} model",
                bad.window_len(),
                spec.window()
            )));
        }
        let compiled = CompiledRuleSet::compile(&predictor);
        // Poison recovery is safe for the same reason as `read_slots`: the
        // map is structurally valid at every instruction boundary.
        let mut slots = self
            .slots
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Version against the *current* slot content, not the snapshot taken
        // before validation, so concurrent swaps still produce a strictly
        // increasing sequence.
        let version = slots
            .get(name)
            .map(|e| e.version)
            .or(grabbed.map(|e| e.version))
            .map_or(1, |v| v + 1);
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            spec,
            fingerprint,
            version,
            predictor,
            compiled,
        });
        slots.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evoforecast_core::prelude::ModelMetadata;
    use evoforecast_core::rule::{Condition, Gene, Rule};

    fn rule(lo: f64, hi: f64, value: f64) -> Rule {
        Rule {
            condition: Condition::new(vec![Gene::bounded(lo, hi), Gene::Wildcard]),
            coefficients: vec![0.0, 0.0],
            intercept: value,
            prediction: value,
            error: 0.1,
            matched: 5,
        }
    }

    fn predictor(value: f64) -> RuleSetPredictor {
        RuleSetPredictor::new(vec![rule(0.0, 100.0, value)])
    }

    fn spec() -> WindowSpec {
        WindowSpec::new(2, 1).unwrap()
    }

    #[test]
    fn install_get_list_round_trip() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.install("tides", spec(), predictor(4.0)).unwrap();
        let entry = reg.get("tides").unwrap();
        assert_eq!(entry.name(), "tides");
        assert_eq!(entry.version, 1);
        assert_eq!(entry.predictor.predict(&[1.0, 2.0]), Some(4.0));
        assert_eq!(
            entry.compiled.predict(&[1.0, 2.0]),
            entry.predictor.predict(&[1.0, 2.0])
        );
        let infos = reg.list();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "tides");
        assert_eq!(infos[0].window, 2);
        assert_eq!(infos[0].rules, 1);
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn reinstall_bumps_version() {
        let reg = ModelRegistry::new();
        reg.install("m", spec(), predictor(1.0)).unwrap();
        reg.install("m", spec(), predictor(2.0)).unwrap();
        let entry = reg.get("m").unwrap();
        assert_eq!(entry.version, 2);
        assert_eq!(entry.predictor.predict(&[1.0, 1.0]), Some(2.0));
    }

    #[test]
    fn old_arc_survives_swap() {
        let reg = ModelRegistry::new();
        reg.install("m", spec(), predictor(1.0)).unwrap();
        let old = reg.get("m").unwrap();
        reg.install("m", spec(), predictor(2.0)).unwrap();
        // The grabbed entry still answers with the old model.
        assert_eq!(old.predictor.predict(&[1.0, 1.0]), Some(1.0));
        assert_eq!(reg.get("m").unwrap().version, 2);
    }

    #[test]
    fn install_rejects_spec_rule_mismatch() {
        let reg = ModelRegistry::new();
        let err = reg
            .install("m", WindowSpec::new(3, 1).unwrap(), predictor(1.0))
            .unwrap_err();
        assert!(matches!(err, RegistryError::Artifact(_)), "{err}");
        assert!(reg.is_empty());
    }

    #[test]
    fn reload_model_artifact_checks_fingerprint() {
        let dir = std::env::temp_dir().join("evoforecast_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        TrainedModel::new(spec(), predictor(7.0), ModelMetadata::default())
            .save_json_file(&good)
            .unwrap();
        // Same window length but a different horizon: different contract.
        let other_spec = WindowSpec::new(2, 5).unwrap();
        TrainedModel::new(other_spec, predictor(9.0), ModelMetadata::default())
            .save_json_file(&bad)
            .unwrap();

        let reg = ModelRegistry::new();
        reg.install("m", spec(), predictor(1.0)).unwrap();

        let entry = reg.reload("m", &good, ArtifactKind::Model).unwrap();
        assert_eq!(entry.version, 2);
        assert_eq!(entry.predictor.predict(&[1.0, 1.0]), Some(7.0));

        let err = reg.reload("m", &bad, ArtifactKind::Model).unwrap_err();
        assert!(
            matches!(err, RegistryError::FingerprintMismatch { .. }),
            "{err}"
        );
        // Old model keeps serving at the same version.
        let entry = reg.get("m").unwrap();
        assert_eq!(entry.version, 2);
        assert_eq!(entry.predictor.predict(&[1.0, 1.0]), Some(7.0));

        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn reload_model_artifact_can_create_slot() {
        let dir = std::env::temp_dir().join("evoforecast_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fresh.json");
        TrainedModel::new(spec(), predictor(3.0), ModelMetadata::default())
            .save_json_file(&path)
            .unwrap();
        let reg = ModelRegistry::new();
        let entry = reg.reload("fresh", &path, ArtifactKind::Model).unwrap();
        assert_eq!(entry.version, 1);
        assert_eq!(entry.fingerprint, spec_fingerprint(&spec()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_checkpoint_requires_existing_slot() {
        let reg = ModelRegistry::new();
        let err = reg
            .reload("m", Path::new("/nonexistent"), ArtifactKind::Checkpoint)
            .unwrap_err();
        assert!(matches!(err, RegistryError::ModelNotFound(_)), "{err}");
    }

    #[test]
    fn reload_missing_file_is_artifact_error() {
        let reg = ModelRegistry::new();
        let err = reg
            .reload("m", Path::new("/nonexistent.json"), ArtifactKind::Model)
            .unwrap_err();
        assert!(matches!(err, RegistryError::Artifact(_)), "{err}");
    }

    #[test]
    fn spec_fingerprint_separates_contracts() {
        let a = spec_fingerprint(&WindowSpec::new(4, 1).unwrap());
        let b = spec_fingerprint(&WindowSpec::new(4, 2).unwrap());
        let c = spec_fingerprint(&WindowSpec::with_spacing(4, 1, 2).unwrap());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, spec_fingerprint(&WindowSpec::new(4, 1).unwrap()));
    }
}
