//! Lock-free serving statistics: monotonic counters plus a fixed-bucket
//! latency histogram.
//!
//! The histogram uses power-of-two microsecond buckets (bucket `i` holds
//! latencies in `[2^(i-1), 2^i)` µs), so recording is one `leading_zeros`
//! and one relaxed fetch-add — cheap enough for the per-request hot path —
//! and quantiles are read as the upper bound of the bucket where the
//! cumulative count crosses the rank. Resolution is a factor of two, which
//! is plenty for p50/p99 dashboards and costs 41 atomics of memory.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket 40 tops out at ~2^40 µs ≈ 12 days,
/// far beyond any request deadline.
const BUCKETS: usize = 41;

/// Fixed-bucket histogram of microsecond latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency observation.
    pub fn record(&self, micros: u64) {
        let bucket = (64 - u64::leading_zeros(micros) as usize).min(BUCKETS - 1);
        // audit: allow(panic-freedom) — bucket is clamped to BUCKETS-1 on the line above
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile observation,
    /// or 0 when nothing was recorded. `q` is clamped to `[0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based; ceil so q=0.5 of 2 obs
        // lands on the first.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i spans [2^(i-1), 2^i) µs; bucket 0 is exactly 0.
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Shared counters for one server instance. All relaxed atomics: the numbers
/// feed dashboards, not control flow.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests admitted past the queue (any route).
    pub requests: AtomicU64,
    /// Requests answered 2xx.
    pub ok: AtomicU64,
    /// Requests answered with a typed error.
    pub errors: AtomicU64,
    /// Connections rejected at admission because the queue was full.
    pub shed: AtomicU64,
    /// Successful hot reloads.
    pub reloads: AtomicU64,
    /// Windows predicted (batch items, not requests).
    pub windows: AtomicU64,
    /// Windows on which every rule abstained.
    pub abstentions: AtomicU64,
    /// End-to-end latency (queue wait + processing) per admitted request.
    pub latency: LatencyHistogram,
}

impl ServerStats {
    /// Bump a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot for `GET /stats`.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            windows: self.windows.load(Ordering::Relaxed),
            abstentions: self.abstentions.load(Ordering::Relaxed),
            latency_p50_us: self.latency.quantile_upper_bound(0.50),
            latency_p99_us: self.latency.quantile_upper_bound(0.99),
        }
    }
}

/// Point-in-time view of [`ServerStats`], serialized by `GET /stats`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests admitted past the queue.
    pub requests: u64,
    /// Requests answered 2xx.
    pub ok: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Connections shed at admission (queue full).
    pub shed: u64,
    /// Successful hot reloads.
    pub reloads: u64,
    /// Windows predicted.
    pub windows: u64,
    /// Windows abstained on.
    pub abstentions: u64,
    /// p50 end-to-end latency, upper bucket bound in µs.
    pub latency_p50_us: u64,
    /// p99 end-to-end latency, upper bucket bound in µs.
    pub latency_p99_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let h = LatencyHistogram::default();
        // 99 fast observations (~100 µs → bucket 7, bound 128) and one slow
        // (~10 ms → bucket 14, bound 16384).
        for _ in 0..99 {
            h.record(100);
        }
        h.record(10_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_upper_bound(0.50), 128);
        assert_eq!(h.quantile_upper_bound(0.99), 128);
        assert_eq!(h.quantile_upper_bound(1.0), 16_384);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn huge_latency_saturates_last_bucket() {
        let h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile_upper_bound(1.0), 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let stats = ServerStats::default();
        ServerStats::inc(&stats.requests);
        ServerStats::inc(&stats.ok);
        stats.latency.record(300);
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.latency_p50_us, 512);
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
