//! Online inference for evoforecast: a threaded HTTP forecast server that
//! serves [`evoforecast_core::CompiledRuleSet`] predictors out of a
//! hot-swap model registry.
//!
//! The Michigan design makes the *whole rule population* the deployed model,
//! so serving means match-and-combine over the rule set per query. This
//! crate puts that online:
//!
//! * [`registry::ModelRegistry`] — named slots of immutable
//!   `Arc<ModelEntry>` values (window spec + scan predictor + compiled
//!   predictor), swapped atomically for zero-downtime hot reload, gated by a
//!   config fingerprint.
//! * [`server::Server`] — a std-`TcpListener` HTTP/1.1 server with an
//!   accept thread, a bounded admission queue that sheds load with typed
//!   429s instead of queueing unboundedly, a worker pool, per-request
//!   deadlines, and graceful drain on shutdown.
//! * [`protocol`] — the JSON request/response types, including the typed
//!   [`protocol::ErrorKind`] taxonomy every failure is reported in.
//! * [`stats`] — lock-free counters and a fixed-bucket latency histogram
//!   behind `GET /stats`.
//!
//! # Quickstart
//!
//! ```
//! use evoforecast_core::rule::{Condition, Gene, Rule};
//! use evoforecast_core::RuleSetPredictor;
//! use evoforecast_serve::registry::ModelRegistry;
//! use evoforecast_serve::server::{Server, ServerConfig};
//! use evoforecast_tsdata::window::WindowSpec;
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//!
//! let rule = Rule {
//!     condition: Condition::new(vec![Gene::bounded(0.0, 100.0)]),
//!     coefficients: vec![1.0],
//!     intercept: 1.0,
//!     prediction: 1.0,
//!     error: 0.1,
//!     matched: 5,
//! };
//! let registry = Arc::new(ModelRegistry::new());
//! registry
//!     .install(
//!         "default",
//!         WindowSpec::new(1, 1).unwrap(),
//!         RuleSetPredictor::new(vec![rule]),
//!     )
//!     .unwrap();
//! let server = Server::start(ServerConfig::default(), registry).unwrap();
//!
//! let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
//! let body = r#"{"windows": [[41.0]]}"#;
//! write!(
//!     conn,
//!     "POST /forecast HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).unwrap();
//! assert!(reply.contains("42"), "{reply}");
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod stats;

pub use protocol::{
    ArtifactKind, CombinationMode, EngineKind, ErrorKind, ErrorResponse, ForecastRequest,
    ForecastResponse, ModelInfo, ReloadRequest, ReloadResponse, WindowDetail,
};
pub use registry::{ModelEntry, ModelRegistry, RegistryError};
pub use server::{Server, ServerConfig};
pub use stats::{LatencyHistogram, ServerStats, StatsSnapshot};
