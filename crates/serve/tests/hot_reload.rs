//! Hot-reload and lifecycle hardening: atomic model swaps under concurrent
//! traffic, fingerprint gating, load-shedding at saturation, and graceful
//! drain on shutdown — all through real sockets.

mod common;

use common::{flat_predictor, get, parse_reply, post, spec, start_server};
use evoforecast_core::checkpoint::{EnsembleCheckpoint, CHECKPOINT_VERSION};
use evoforecast_core::prelude::{ModelMetadata, TrainedModel};
use evoforecast_core::rule::{Condition, Gene, Rule};
use evoforecast_serve::registry::spec_fingerprint;
use evoforecast_serve::server::ServerConfig;
use evoforecast_serve::{ErrorKind, ForecastResponse, ReloadResponse, StatsSnapshot};
use evoforecast_tsdata::window::WindowSpec;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("evoforecast_hot_reload")
        .join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_model(path: &PathBuf, model_spec: WindowSpec, value: f64) {
    TrainedModel::new(model_spec, flat_predictor(value), ModelMetadata::default())
        .save_json_file(path)
        .unwrap();
}

#[test]
fn concurrent_requests_see_old_or_new_never_torn() {
    const OLD: f64 = 10.0;
    const NEW: f64 = 20.0;
    let dir = scratch_dir("swap");
    let artifact = dir.join("new.json");
    save_model(&artifact, spec(), NEW);

    let server = start_server(
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
        OLD,
    );
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let r = post(addr, "/forecast", r#"{"windows": [[1.0, 2.0]]}"#);
                    if r.status == 200 {
                        let resp: ForecastResponse = serde_json::from_str(&r.body).unwrap();
                        seen.push((resp.model_version, resp.predictions[0].unwrap()));
                    }
                }
                seen
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    let body = format!(r#"{{"path": {:?}}}"#, artifact.to_str().unwrap());
    let r = post(addr, "/reload", &body);
    assert_eq!(r.status, 200, "{}", r.body);
    let reload: ReloadResponse = serde_json::from_str(&r.body).unwrap();
    assert_eq!(reload.version, 2);
    std::thread::sleep(Duration::from_millis(100));

    stop.store(true, Ordering::Relaxed);
    let mut saw_old = false;
    let mut saw_new = false;
    for h in hammers {
        for (version, value) in h.join().unwrap() {
            // The pair must be internally consistent: version 1 answers with
            // the old model's output, version 2 with the new — any other
            // combination is a torn read.
            match version {
                1 => {
                    assert_eq!(value, OLD, "version 1 answered with a foreign value");
                    saw_old = true;
                }
                2 => {
                    assert_eq!(value, NEW, "version 2 answered with a foreign value");
                    saw_new = true;
                }
                other => panic!("impossible model version {other}"),
            }
        }
    }
    assert!(saw_old, "hammers never observed the pre-swap model");
    assert!(saw_new, "hammers never observed the post-swap model");

    // After the dust settles every answer is the new model.
    let r = post(addr, "/forecast", r#"{"windows": [[1.0, 2.0]]}"#);
    let resp: ForecastResponse = serde_json::from_str(&r.body).unwrap();
    assert_eq!(resp.model_version, 2);
    assert_eq!(resp.predictions[0], Some(NEW));
    server.shutdown();
}

#[test]
fn fingerprint_mismatch_rejected_old_model_keeps_serving() {
    let dir = scratch_dir("mismatch");
    let foreign = dir.join("foreign.json");
    // Same window length, different horizon: a different contract.
    save_model(&foreign, WindowSpec::new(2, 9).unwrap(), 99.0);

    let server = start_server(ServerConfig::default(), 5.0);
    let addr = server.local_addr();

    let body = format!(r#"{{"path": {:?}}}"#, foreign.to_str().unwrap());
    let r = post(addr, "/reload", &body);
    assert_eq!(r.status, 409, "{}", r.body);
    assert_eq!(r.error_kind(), ErrorKind::FingerprintMismatch);

    // Unreadable artifact: typed, not fatal.
    let r = post(addr, "/reload", r#"{"path": "/nonexistent/m.json"}"#);
    assert_eq!(r.status, 422);
    assert_eq!(r.error_kind(), ErrorKind::ReloadFailed);

    // Old model still serving, version unbumped.
    let r = post(addr, "/forecast", r#"{"windows": [[1.0, 2.0]]}"#);
    let resp: ForecastResponse = serde_json::from_str(&r.body).unwrap();
    assert_eq!(resp.model_version, 1);
    assert_eq!(resp.predictions[0], Some(5.0));
    server.shutdown();
}

#[test]
fn checkpoint_artifact_reload_inherits_spec() {
    let dir = scratch_dir("checkpoint");
    let good = dir.join("good.ckpt.json");
    let bad = dir.join("bad.ckpt.json");

    let new_rule = Rule {
        condition: Condition::new(vec![Gene::bounded(0.0, 100.0), Gene::Wildcard]),
        coefficients: vec![0.0, 0.0],
        intercept: 33.0,
        prediction: 33.0,
        error: 0.2,
        matched: 7,
    };
    // A supervisor checkpoint whose config fingerprint was recorded as the
    // slot's contract (the CLI serve path installs slots this way too).
    let mut cp = EnsembleCheckpoint {
        version: CHECKPOINT_VERSION,
        config_fingerprint: spec_fingerprint(&spec()),
        executions_done: 1,
        outcomes: vec![],
        rules: vec![new_rule],
        folded_rules: 1,
        coverage_len: 0,
        covered_words: vec![],
    };
    cp.save(&good).unwrap();
    cp.config_fingerprint ^= 0xdead_beef;
    cp.save(&bad).unwrap();

    let server = start_server(ServerConfig::default(), 5.0);
    let addr = server.local_addr();

    // Checkpoint into an unknown slot: needs an existing spec to inherit.
    let body = format!(
        r#"{{"model": "ghost", "path": {:?}, "kind": "checkpoint"}}"#,
        good.to_str().unwrap()
    );
    let r = post(addr, "/reload", &body);
    assert_eq!(r.status, 404);
    assert_eq!(r.error_kind(), ErrorKind::ModelNotFound);

    // Fingerprint-mismatched checkpoint: rejected.
    let body = format!(
        r#"{{"path": {:?}, "kind": "checkpoint"}}"#,
        bad.to_str().unwrap()
    );
    let r = post(addr, "/reload", &body);
    assert_eq!(r.status, 409);
    assert_eq!(r.error_kind(), ErrorKind::FingerprintMismatch);

    // Matching checkpoint: swapped in, spec inherited from the slot.
    let body = format!(
        r#"{{"path": {:?}, "kind": "checkpoint"}}"#,
        good.to_str().unwrap()
    );
    let r = post(addr, "/reload", &body);
    assert_eq!(r.status, 200, "{}", r.body);
    let reload: ReloadResponse = serde_json::from_str(&r.body).unwrap();
    assert_eq!(reload.version, 2);
    assert_eq!(reload.rules, 1);

    let r = post(addr, "/forecast", r#"{"windows": [[1.0, 2.0]]}"#);
    let resp: ForecastResponse = serde_json::from_str(&r.body).unwrap();
    assert_eq!(resp.predictions[0], Some(33.0));
    server.shutdown();
}

#[test]
fn load_shedding_engages_under_saturation() {
    // One worker, one queue slot: a stalled connection occupies the worker,
    // a second fills the queue, everything after that must be shed with a
    // typed 429 instead of queueing unboundedly.
    let server = start_server(
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            deadline: Duration::from_millis(600),
            ..ServerConfig::default()
        },
        1.0,
    );
    let addr = server.local_addr();

    let stall_worker = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let stall_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let mut shed_count = 0;
    for _ in 0..3 {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let r = parse_reply(&raw);
        assert_eq!(r.status, 429, "{raw}");
        assert_eq!(r.error_kind(), ErrorKind::Overloaded);
        shed_count += 1;
    }
    assert_eq!(shed_count, 3);

    // The stalled connections resolve as typed deadline errors, after which
    // the server recovers and serves normally again.
    drop(stall_worker);
    drop(stall_queue);
    std::thread::sleep(Duration::from_millis(700));
    let r = post(addr, "/forecast", r#"{"windows": [[1.0, 2.0]]}"#);
    assert_eq!(r.status, 200, "{}", r.body);

    let snap: StatsSnapshot = serde_json::from_str(&get(addr, "/stats").body).unwrap();
    assert!(
        snap.shed >= 3,
        "shed counter {} should cover rejects",
        snap.shed
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_requests() {
    // One worker so requests queue up; shutdown must answer everything that
    // was admitted before the call.
    let server = start_server(
        ServerConfig {
            workers: 1,
            queue_depth: 16,
            ..ServerConfig::default()
        },
        8.0,
    );
    let addr = server.local_addr();

    let clients: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let body = r#"{"windows": [[1.0, 2.0]]}"#;
                let payload = format!(
                    "POST /forecast HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
                    body.len(),
                    body
                );
                let mut conn = TcpStream::connect(addr).unwrap();
                conn.set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                conn.write_all(payload.as_bytes()).unwrap();
                conn.shutdown(std::net::Shutdown::Write).ok();
                let mut raw = String::new();
                conn.read_to_string(&mut raw).unwrap();
                parse_reply(&raw)
            })
        })
        .collect();

    // Let the accept thread admit everything, then shut down mid-drain.
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown();

    for c in clients {
        let r = c.join().unwrap();
        assert_eq!(
            r.status, 200,
            "admitted request dropped on shutdown: {}",
            r.body
        );
        let resp: ForecastResponse = serde_json::from_str(&r.body).unwrap();
        assert_eq!(resp.predictions[0], Some(8.0));
    }

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect(addr).is_err()
            || TcpStream::connect(addr)
                .and_then(|mut c| {
                    let mut buf = String::new();
                    c.set_read_timeout(Some(Duration::from_secs(2)))?;
                    c.read_to_string(&mut buf).map(|_| buf.is_empty())
                })
                .unwrap_or(true),
        "server accepted traffic after shutdown"
    );
}
