//! Wire-protocol hardening, driven through real sockets: every malformed or
//! over-limit input must come back as a typed JSON error — never a panic, a
//! hang, or a silently dropped connection — and the server must keep
//! serving valid traffic afterwards.

mod common;

use common::{get, parse_reply, post, raw_round_trip, start_server};
use evoforecast_serve::server::ServerConfig;
use evoforecast_serve::{ErrorKind, ForecastResponse};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn tight_config() -> ServerConfig {
    ServerConfig {
        max_batch: 4,
        max_body_bytes: 4096,
        ..ServerConfig::default()
    }
}

#[test]
fn typed_errors_for_every_malformed_input() {
    let server = start_server(tight_config(), 42.0);
    let addr = server.local_addr();

    // Malformed JSON body.
    let r = post(addr, "/forecast", "{not json");
    assert_eq!(r.status, 400);
    assert_eq!(r.error_kind(), ErrorKind::BadRequest);

    // Valid JSON, wrong shape (windows is not an array of arrays).
    let r = post(addr, "/forecast", r#"{"windows": 3}"#);
    assert_eq!(r.status, 400);
    assert_eq!(r.error_kind(), ErrorKind::BadRequest);

    // Empty batch.
    let r = post(addr, "/forecast", r#"{"windows": []}"#);
    assert_eq!(r.status, 400);
    assert_eq!(r.error_kind(), ErrorKind::EmptyRequest);

    // Wrong window length vs the model's D = 2.
    let r = post(addr, "/forecast", r#"{"windows": [[1.0, 2.0, 3.0]]}"#);
    assert_eq!(r.status, 400);
    assert_eq!(r.error_kind(), ErrorKind::WindowLengthMismatch);

    // Non-finite window value (JSON null parses as NaN).
    let r = post(addr, "/forecast", r#"{"windows": [[1.0, null]]}"#);
    assert_eq!(r.status, 400);
    assert_eq!(r.error_kind(), ErrorKind::NonFiniteInput);

    // Oversized micro-batch (cap is 4).
    let batch: Vec<&str> = std::iter::repeat_n("[1.0, 2.0]", 5).collect();
    let r = post(
        addr,
        "/forecast",
        &format!(r#"{{"windows": [{}]}}"#, batch.join(",")),
    );
    assert_eq!(r.status, 413);
    assert_eq!(r.error_kind(), ErrorKind::BatchTooLarge);

    // Unknown model slot.
    let r = post(
        addr,
        "/forecast",
        r#"{"model": "ghost", "windows": [[1.0, 2.0]]}"#,
    );
    assert_eq!(r.status, 404);
    assert_eq!(r.error_kind(), ErrorKind::ModelNotFound);

    // Zero horizon.
    let r = post(
        addr,
        "/forecast",
        r#"{"windows": [[1.0, 2.0]], "horizon": 0}"#,
    );
    assert_eq!(r.status, 400);
    assert_eq!(r.error_kind(), ErrorKind::BadRequest);

    // Unknown route and wrong method.
    let r = get(addr, "/nope");
    assert_eq!(r.status, 404);
    assert_eq!(r.error_kind(), ErrorKind::NotFound);
    let r = get(addr, "/forecast");
    assert_eq!(r.status, 405);
    assert_eq!(r.error_kind(), ErrorKind::MethodNotAllowed);

    // Not even HTTP.
    let r = raw_round_trip(addr, b"EHLO forecast\r\n\r\n");
    assert_eq!(r.status, 400);
    assert_eq!(r.error_kind(), ErrorKind::BadRequest);

    // Declared body larger than the cap: rejected from the header alone.
    let r = raw_round_trip(
        addr,
        b"POST /forecast HTTP/1.1\r\ncontent-length: 999999\r\n\r\n",
    );
    assert_eq!(r.status, 413);
    assert_eq!(r.error_kind(), ErrorKind::PayloadTooLarge);

    // After all of that abuse the server still answers valid requests.
    let r = post(addr, "/forecast", r#"{"windows": [[1.0, 2.0]]}"#);
    assert_eq!(r.status, 200, "{}", r.body);
    let resp: ForecastResponse = serde_json::from_str(&r.body).unwrap();
    assert_eq!(resp.predictions, vec![Some(42.0)]);
    assert_eq!(resp.abstained, 0);

    let stats = get(addr, "/stats");
    assert_eq!(stats.status, 200);
    assert!(stats.body.contains("\"errors\""), "{}", stats.body);

    server.shutdown();
}

#[test]
fn unsupported_horizon_is_typed() {
    // τ = 3 model: closed-loop horizon must be refused.
    let registry = std::sync::Arc::new(evoforecast_serve::registry::ModelRegistry::new());
    registry
        .install(
            "default",
            evoforecast_tsdata::window::WindowSpec::new(2, 3).unwrap(),
            common::flat_predictor(7.0),
        )
        .unwrap();
    let server =
        evoforecast_serve::server::Server::start(ServerConfig::default(), registry).unwrap();
    let r = post(
        server.local_addr(),
        "/forecast",
        r#"{"windows": [[1.0, 2.0]], "horizon": 4}"#,
    );
    assert_eq!(r.status, 400);
    assert_eq!(r.error_kind(), ErrorKind::UnsupportedHorizon);
    // horizon = 1 still answers at the trained τ.
    let r = post(
        server.local_addr(),
        "/forecast",
        r#"{"windows": [[1.0, 2.0]]}"#,
    );
    assert_eq!(r.status, 200);
    server.shutdown();
}

#[test]
fn deadline_exceeded_is_typed_not_dropped() {
    let server = start_server(
        ServerConfig {
            deadline: Duration::from_millis(150),
            ..ServerConfig::default()
        },
        1.0,
    );
    // Connect, then stall: the worker's read times out at the deadline and
    // must still answer with a typed 504.
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let r = parse_reply(&raw);
    assert_eq!(r.status, 504, "{raw}");
    assert_eq!(r.error_kind(), ErrorKind::DeadlineExceeded);
    server.shutdown();
}

#[test]
fn half_sent_body_is_answered_not_hung() {
    let server = start_server(
        ServerConfig {
            deadline: Duration::from_millis(150),
            ..ServerConfig::default()
        },
        1.0,
    );
    // Declare 100 bytes, send 10, stall. Must resolve as a typed error at
    // the deadline rather than holding the worker forever.
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(b"POST /forecast HTTP/1.1\r\ncontent-length: 100\r\n\r\n0123456789")
        .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let r = parse_reply(&raw);
    assert_eq!(r.status, 504, "{raw}");
    assert_eq!(r.error_kind(), ErrorKind::DeadlineExceeded);
    server.shutdown();
}

#[test]
fn batch_detail_and_combination_over_the_wire() {
    let server = start_server(ServerConfig::default(), 10.0);
    let addr = server.local_addr();
    let r = post(
        addr,
        "/forecast",
        r#"{"windows": [[1.0, 2.0], [500.0, 500.0]], "detail": true, "combination": "inverse-error-weighted"}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    let resp: ForecastResponse = serde_json::from_str(&r.body).unwrap();
    assert_eq!(resp.predictions.len(), 2);
    assert_eq!(resp.predictions[0], Some(10.0));
    assert_eq!(resp.predictions[1], None); // outside every rule: abstains
    assert_eq!(resp.abstained, 1);
    let details = resp.details.expect("detail opt-in");
    assert_eq!(details[0].as_ref().unwrap().firing_rules, 1);
    assert!(details[1].is_none());
    server.shutdown();
}

#[test]
fn scan_and_compiled_engines_agree_over_the_wire() {
    let server = start_server(ServerConfig::default(), 3.5);
    let addr = server.local_addr();
    let body = r#"{"windows": [[1.0, 2.0], [90.0, 10.0]], "engine": "compiled"}"#;
    let compiled: ForecastResponse =
        serde_json::from_str(&post(addr, "/forecast", body).body).unwrap();
    let body = r#"{"windows": [[1.0, 2.0], [90.0, 10.0]], "engine": "scan"}"#;
    let scan: ForecastResponse = serde_json::from_str(&post(addr, "/forecast", body).body).unwrap();
    assert_eq!(compiled.predictions, scan.predictions);
    server.shutdown();
}

#[test]
fn introspection_endpoints_answer() {
    let server = start_server(ServerConfig::default(), 1.0);
    let addr = server.local_addr();

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\""), "{}", health.body);

    let models = get(addr, "/models");
    assert_eq!(models.status, 200);
    let infos: Vec<evoforecast_serve::ModelInfo> = serde_json::from_str(&models.body).unwrap();
    assert_eq!(infos.len(), 1);
    assert_eq!(infos[0].name, "default");
    assert_eq!(infos[0].window, 2);
    assert_eq!(infos[0].version, 1);

    let stats = get(addr, "/stats");
    assert_eq!(stats.status, 200);
    let snap: evoforecast_serve::StatsSnapshot = serde_json::from_str(&stats.body).unwrap();
    assert!(snap.requests >= 2);
    server.shutdown();
}
