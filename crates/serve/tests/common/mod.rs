//! Shared plumbing for the socket-level integration suites: a tiny blocking
//! HTTP client and model fixtures.

use evoforecast_core::rule::{Condition, Gene, Rule};
use evoforecast_core::RuleSetPredictor;
use evoforecast_serve::registry::ModelRegistry;
use evoforecast_serve::server::{Server, ServerConfig};
use evoforecast_serve::{ErrorKind, ErrorResponse};
use evoforecast_tsdata::window::WindowSpec;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A parsed HTTP reply.
#[derive(Debug, Clone)]
pub struct Reply {
    pub status: u16,
    pub body: String,
}

impl Reply {
    /// Parse the JSON body as a typed error and return its kind.
    pub fn error_kind(&self) -> ErrorKind {
        let err: ErrorResponse = serde_json::from_str(&self.body)
            .unwrap_or_else(|e| panic!("not an ErrorResponse: {e} in {:?}", self.body));
        err.error
    }
}

/// Send raw bytes, read the whole reply, parse the status line.
pub fn raw_round_trip(addr: SocketAddr, payload: &[u8]) -> Reply {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(payload).expect("send");
    conn.shutdown(std::net::Shutdown::Write).ok();
    read_reply(&mut conn)
}

/// Read and parse a reply from an already-open connection.
pub fn read_reply(conn: &mut TcpStream) -> Reply {
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read reply");
    parse_reply(&raw)
}

pub fn parse_reply(raw: &str) -> Reply {
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparseable reply: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Reply { status, body }
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    let payload = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    raw_round_trip(addr, payload.as_bytes())
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> Reply {
    raw_round_trip(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes(),
    )
}

/// A D=2, τ=1 rule set whose prediction in `[0, 100]²` is `value`.
pub fn flat_predictor(value: f64) -> RuleSetPredictor {
    let rule = Rule {
        condition: Condition::new(vec![Gene::bounded(0.0, 100.0), Gene::bounded(0.0, 100.0)]),
        coefficients: vec![0.0, 0.0],
        intercept: value,
        prediction: value,
        error: 0.1,
        matched: 5,
    };
    RuleSetPredictor::new(vec![rule])
}

pub fn spec() -> WindowSpec {
    WindowSpec::new(2, 1).unwrap()
}

/// Start a server on an ephemeral port with one `default` slot predicting
/// `value`.
pub fn start_server(config: ServerConfig, value: f64) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    registry
        .install("default", spec(), flat_predictor(value))
        .expect("install fixture model");
    Server::start(config, registry).expect("start server")
}
