//! Determinism pin for the registry's enumeration order (the wire `/models`
//! listing is built from [`ModelRegistry::list`]). The determinism audit
//! rule bans `HashMap`/`HashSet` in serve; this test pins the observable
//! property that rule protects: listing order is the name order, independent
//! of insertion order.

// This suite needs only the model fixtures, not the HTTP client half.
#[allow(dead_code)]
mod common;

use common::{flat_predictor, spec};
use evoforecast_serve::registry::ModelRegistry;

#[test]
fn list_is_name_ordered_regardless_of_insertion_order() {
    let orders: [&[&str]; 3] = [
        &["zeta", "alpha", "mid"],
        &["alpha", "mid", "zeta"],
        &["mid", "zeta", "alpha"],
    ];
    let mut listings = Vec::new();
    for names in orders {
        let registry = ModelRegistry::new();
        for (i, name) in names.iter().enumerate() {
            registry
                .install(name, spec(), flat_predictor(i as f64))
                .expect("install slot");
        }
        let listed: Vec<String> = registry.list().into_iter().map(|m| m.name).collect();
        assert_eq!(
            listed,
            vec!["alpha".to_string(), "mid".to_string(), "zeta".to_string()],
            "inserted as {names:?}"
        );
        listings.push(listed);
    }
    assert!(
        listings.windows(2).all(|w| w[0] == w[1]),
        "every insertion order must produce the identical listing"
    );
}
